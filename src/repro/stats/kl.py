"""Kullback-Leibler divergence between task-duration distributions.

Paper Section II uses the symmetric KL divergence

    ``D'(P||Q) = (D(P||Q) + D(Q||P)) / 2``

to show that phase-duration distributions are nearly identical across
executions of the *same* application (Table I: values well below ~4) and
very different across *different* applications (values ~7-13.5).

Samples are compared through a shared histogram.  Empty bins receive a
small additive mass ``epsilon`` before normalization; this keeps the
divergence finite for distributions with disjoint support and bounds it
near ``log(1/epsilon)`` — with the default ``epsilon = 1e-6`` that ceiling
is ~13.8, matching the scale of the paper's cross-application values.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["kl_divergence", "symmetric_kl", "histogram_kl", "duration_histogram"]


def kl_divergence(p: Sequence[float], q: Sequence[float]) -> float:
    """``D(P||Q) = sum_i P(i) * log(P(i)/Q(i))`` for probability vectors.

    Both vectors must be the same length, non-negative, and are
    normalized internally.  Wherever ``P(i) = 0`` the term is 0 by the
    usual convention; ``Q(i) = 0`` with ``P(i) > 0`` yields ``inf``.
    """
    p_arr = np.asarray(p, dtype=np.float64)
    q_arr = np.asarray(q, dtype=np.float64)
    if p_arr.shape != q_arr.shape or p_arr.ndim != 1:
        raise ValueError(
            f"P and Q must be 1-D and equal length, got {p_arr.shape} vs {q_arr.shape}"
        )
    if np.any(p_arr < 0) or np.any(q_arr < 0):
        raise ValueError("probability vectors must be non-negative")
    ps, qs = p_arr.sum(), q_arr.sum()
    if ps <= 0 or qs <= 0:
        raise ValueError("probability vectors must have positive mass")
    p_arr = p_arr / ps
    q_arr = q_arr / qs
    support = p_arr > 0
    if np.any(q_arr[support] == 0):
        return float("inf")
    return float(np.sum(p_arr[support] * np.log(p_arr[support] / q_arr[support])))


def symmetric_kl(p: Sequence[float], q: Sequence[float]) -> float:
    """The paper's ``D'(P||Q) = (D(P||Q) + D(Q||P)) / 2``."""
    return 0.5 * (kl_divergence(p, q) + kl_divergence(q, p))


def duration_histogram(
    samples: Sequence[Sequence[float]],
    bins: Optional[int] = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Shared-bin histograms over several duration samples.

    Returns ``(edges, counts_per_sample)``.  With ``bins=None`` the bin
    width is one second (the natural resolution of JobTracker logs),
    capped at 400 bins for very wide ranges.
    """
    arrays = [np.asarray(s, dtype=np.float64) for s in samples]
    if not arrays or any(a.size == 0 for a in arrays):
        raise ValueError("every sample must be non-empty")
    combined = np.concatenate(arrays)
    lo, hi = float(combined.min()), float(combined.max())
    if hi <= lo:
        hi = lo + 1.0
    if bins is None:
        # Resolution follows the data: at most one bin per second (the
        # log resolution), but never finer than the smallest sample can
        # populate (~sqrt(n) bins), or small-sample noise masquerades as
        # divergence.
        n_min = min(a.size for a in arrays)
        bins = int(np.clip(np.ceil(hi - lo), 1, np.clip(np.sqrt(n_min) * 2, 5, 100)))
    edges = np.linspace(lo, hi, bins + 1)
    return edges, [np.histogram(a, bins=edges)[0].astype(np.float64) for a in arrays]


def histogram_kl(
    sample_p: Sequence[float],
    sample_q: Sequence[float],
    *,
    bins: Optional[int] = None,
    epsilon: float = 1e-6,
) -> float:
    """Symmetric KL divergence between two duration samples.

    The samples are binned on shared edges (see :func:`duration_histogram`)
    and smoothed additively with ``epsilon`` so the divergence stays
    finite for disjoint distributions.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    _, (hp, hq) = duration_histogram([sample_p, sample_q], bins=bins)
    return symmetric_kl(hp + epsilon, hq + epsilon)
