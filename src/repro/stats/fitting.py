"""Distribution fitting with Kolmogorov-Smirnov ranking.

Paper Section V-C: the authors extract the Facebook task-duration CDFs
from the published plots, "fit more than 60 distributions such as
Weibull, LogNormal, Pearson, Exponential, Gamma, etc. using StatAssist",
and select LogNormal by Kolmogorov-Smirnov statistic —
``LN(9.9511, 1.6764)`` for map durations (KS 0.1056) and
``LN(12.375, 1.6262)`` for reduce durations (KS 0.0451).

StatAssist is closed-source; this module reproduces the workflow with
scipy maximum-likelihood fits over a family of candidate distributions,
ranked by the one-sample KS statistic.  :func:`fit_lognormal` returns the
paper's ``(mu, sigma)`` parameterization directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as sps

__all__ = ["FitResult", "fit_candidates", "fit_best", "fit_lognormal", "CANDIDATE_FAMILIES"]

#: scipy distribution names tried by default, mirroring the paper's list.
CANDIDATE_FAMILIES: tuple[str, ...] = (
    "lognorm",
    "expon",
    "gamma",
    "weibull_min",
    "norm",
    "pareto",
    "pearson3",
)


@dataclass(frozen=True, slots=True)
class FitResult:
    """One candidate family's MLE fit and its goodness-of-fit."""

    family: str
    params: tuple[float, ...]
    ks_statistic: float
    p_value: float

    def frozen(self):
        """The frozen scipy distribution for sampling/evaluation."""
        dist = getattr(sps, self.family)
        return dist(*self.params)


def _clean(sample: Sequence[float]) -> np.ndarray:
    arr = np.asarray(sample, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("fitting needs a 1-D sample with at least 2 points")
    if not np.all(np.isfinite(arr)):
        raise ValueError("sample must be finite")
    return arr


def fit_candidates(
    sample: Sequence[float],
    families: Optional[Sequence[str]] = None,
    *,
    fix_location_zero: bool = False,
) -> list[FitResult]:
    """MLE-fit every candidate family; results sorted by KS statistic.

    Families that fail to converge on the sample are skipped silently —
    with heavy-tailed duration data some always will, which is why the
    workflow fits a whole catalogue and ranks survivors.

    ``fix_location_zero`` pins ``loc=0`` for positive-support families
    (durations start at zero by nature); free-location MLE tends to soak
    the sample minimum into ``loc``, producing shifted laws most duration
    models cannot express.
    """
    arr = _clean(sample)
    results: list[FitResult] = []
    for family in families or CANDIDATE_FAMILIES:
        dist = getattr(sps, family, None)
        if dist is None:
            raise ValueError(f"unknown scipy distribution family {family!r}")
        try:
            with np.errstate(all="ignore"):
                if fix_location_zero and family != "norm":
                    params = dist.fit(arr, floc=0.0)
                else:
                    params = dist.fit(arr)
                ks = sps.kstest(arr, family, args=params)
        except Exception:
            continue
        if not np.isfinite(ks.statistic):
            continue
        results.append(
            FitResult(
                family=family,
                params=tuple(float(p) for p in params),
                ks_statistic=float(ks.statistic),
                p_value=float(ks.pvalue),
            )
        )
    if not results:
        raise ValueError("no candidate family could be fitted to the sample")
    results.sort(key=lambda r: r.ks_statistic)
    return results


def fit_best(
    sample: Sequence[float],
    families: Optional[Sequence[str]] = None,
    *,
    fix_location_zero: bool = False,
) -> FitResult:
    """The candidate with the smallest KS statistic."""
    return fit_candidates(sample, families, fix_location_zero=fix_location_zero)[0]


def fit_lognormal(sample: Sequence[float]) -> tuple[float, float, float]:
    """Fit ``LN(mu, sigma)`` (location pinned at 0) and return
    ``(mu, sigma, ks_statistic)`` in the paper's parameterization.

    scipy's lognorm uses ``shape = sigma`` and ``scale = exp(mu)``; we fix
    ``loc = 0`` as the paper's two-parameter LogNormal does.
    """
    arr = _clean(sample)
    if np.any(arr <= 0):
        raise ValueError("lognormal fitting requires strictly positive durations")
    sigma, _loc, scale = sps.lognorm.fit(arr, floc=0.0)
    mu = float(np.log(scale))
    ks = sps.kstest(arr, "lognorm", args=(sigma, 0.0, scale))
    return mu, float(sigma), float(ks.statistic)
