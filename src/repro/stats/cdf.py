"""Empirical CDFs of task durations (paper Figure 3).

Figure 3 plots, per execution phase, "% of tasks" with duration at most
*x* for two different resource allocations, showing the curves coincide.
:class:`EmpiricalCDF` provides exactly those series plus the standard
quantile/evaluation operations the distribution experiments need.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["EmpiricalCDF", "ks_distance"]


class EmpiricalCDF:
    """Right-continuous empirical distribution function of a sample."""

    def __init__(self, sample: Sequence[float]) -> None:
        arr = np.sort(np.asarray(sample, dtype=np.float64))
        if arr.size == 0:
            raise ValueError("empirical CDF needs a non-empty sample")
        if not np.all(np.isfinite(arr)):
            raise ValueError("sample must be finite")
        self.values = arr

    def __call__(self, x: float | Sequence[float]) -> np.ndarray | float:
        """P(X <= x); vectorized over ``x``."""
        result = np.searchsorted(self.values, np.asarray(x, dtype=np.float64), side="right")
        out = result / self.values.size
        return float(out) if np.isscalar(x) or np.ndim(x) == 0 else out

    def quantile(self, q: float | Sequence[float]) -> np.ndarray | float:
        """Inverse CDF (lower quantile)."""
        q_arr = np.asarray(q, dtype=np.float64)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        idx = np.clip(np.ceil(q_arr * self.values.size).astype(int) - 1, 0, self.values.size - 1)
        out = self.values[idx]
        return float(out) if np.isscalar(q) or np.ndim(q) == 0 else out

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(x, percent)`` arrays for plotting: percent of tasks <= x.

        This is the Figure 3 representation ("% of tasks" on the y-axis).
        """
        n = self.values.size
        return self.values.copy(), 100.0 * np.arange(1, n + 1) / n

    @property
    def n(self) -> int:
        return self.values.size

    def mean(self) -> float:
        return float(self.values.mean())

    def percentile(self, p: float) -> float:
        """The p-th percentile (0..100) of the sample."""
        return float(self.quantile(p / 100.0))


def ks_distance(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup_x |F_a(x) - F_b(x)|``."""
    cdf_a = EmpiricalCDF(sample_a)
    cdf_b = EmpiricalCDF(sample_b)
    grid = np.concatenate([cdf_a.values, cdf_b.values])
    return float(np.max(np.abs(cdf_a(grid) - cdf_b(grid))))
