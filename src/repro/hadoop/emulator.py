"""Fine-grained Hadoop cluster emulator — the "real testbed" substitute.

The paper validates SimMR against a 66-node Hadoop cluster: applications
run on the testbed, MRProfiler extracts job traces from the JobTracker
logs, SimMR replays them, and simulated completion times are compared to
the originals (Figure 5).  Without that hardware, this module provides
the ground truth side: a heartbeat-granularity emulation of Hadoop's
execution layer.

Unlike the SimMR engine (which assigns slots centrally and instantly),
the emulator models what the engine abstracts away:

* individual TaskTrackers with per-node slots and a per-node speed
  factor (mild hardware heterogeneity);
* periodic, staggered heartbeats — tasks are only assigned when a
  tracker reports in, so task starts are quantized and delayed;
* per-task execution jitter on top of the profile durations;
* reduce tasks whose shuffle overlaps the map stage and completes only
  after the last map (first wave), with shuffle/sort/reduce phase
  boundaries recorded;
* JobTracker history logs (:mod:`repro.hadoop.history`) for MRProfiler.

Replay error in the validation experiments therefore comes from real
modeling differences (scheduling granularity, assignment order), not
from comparing a simulator against itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Optional, Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.job import Job, JobState, TraceJob
from ..core.results import JobResult
from ..core.walltime import elapsed_since, perf_seconds
from ..schedulers.base import Scheduler
from .hdfs import HdfsPlacement, locality_of
from .history import JobHistoryWriter
from .node import TaskTracker

__all__ = ["EmulatorConfig", "EmuTask", "EmulationResult", "HadoopClusterEmulator"]

# Event priorities: completions before submissions before heartbeats at
# the same instant, so freed slots and queued jobs are visible to the
# heartbeat's assignment decisions.
_MAP_DONE, _RED_DONE, _SUBMIT, _HEARTBEAT = 0, 1, 2, 3


@dataclass(frozen=True, slots=True)
class EmulatorConfig:
    """Shape and fidelity knobs of the emulated cluster.

    Defaults mirror the paper's testbed: 64 workers with one map and one
    reduce slot each, Hadoop's 3-second heartbeat, reduce slow-start at
    5% of maps, speculative execution disabled (the paper disabled it).
    """

    num_nodes: int = 64
    map_slots_per_node: int = 1
    reduce_slots_per_node: int = 1
    heartbeat_interval: float = 3.0
    #: sigma of the lognormal per-node speed factor (0 = homogeneous).
    node_speed_sigma: float = 0.05
    #: sigma of the lognormal per-task duration jitter (0 = exact profile).
    task_jitter_sigma: float = 0.03
    min_map_percent_completed: float = 0.05
    #: Launch speculative backup copies of straggling map tasks (the
    #: paper's testbed ran with speculation *disabled*, the default here;
    #: enabling it supports the "speculation did not lead to significant
    #: improvements" ablation).
    speculative_execution: bool = False
    #: A running map is a straggler once its elapsed time exceeds this
    #: multiple of the job's mean completed map duration.
    speculation_slowness: float = 1.5
    #: Completed maps needed before the mean is trusted.
    speculation_min_completed: int = 3
    #: Probability that a task attempt fails partway through (Hadoop
    #: retries it as a new attempt; the paper's runs had FAILED_MAPS=0,
    #: so the default is 0 — failure injection is for robustness studies).
    task_failure_rate: float = 0.0
    #: Maximum attempts per task (Hadoop's mapred.map.max.attempts).  The
    #: final allowed attempt always succeeds so jobs cannot wedge.
    max_task_attempts: int = 4
    #: Model HDFS block placement and map-task locality: map durations
    #: pick up a penalty off the data's node/rack, and ``locality_wait``
    #: enables delay scheduling (paper reference [3]): a job briefly
    #: declines non-local slots, waiting for a local one.
    model_locality: bool = False
    rack_size: int = 32
    replication: int = 3
    #: Map-duration multipliers off the data (1.0 = node-local).
    rack_penalty: float = 1.15
    remote_penalty: float = 1.4
    #: Delay-scheduling wait (seconds) before accepting a rack-local
    #: task; twice this before accepting any.  0 = greedy locality only.
    locality_wait: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.node_speed_sigma < 0 or self.task_jitter_sigma < 0:
            raise ValueError("noise sigmas must be >= 0")
        if not 0.0 <= self.min_map_percent_completed <= 1.0:
            raise ValueError("min_map_percent_completed must be in [0, 1]")
        if self.speculation_slowness <= 1.0:
            raise ValueError("speculation_slowness must be > 1")
        if self.speculation_min_completed < 1:
            raise ValueError("speculation_min_completed must be >= 1")
        if not 0.0 <= self.task_failure_rate < 1.0:
            raise ValueError("task_failure_rate must be in [0, 1)")
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        if self.rack_penalty < 1.0 or self.remote_penalty < self.rack_penalty:
            raise ValueError(
                "penalties must satisfy 1 <= rack_penalty <= remote_penalty"
            )
        if self.locality_wait < 0:
            raise ValueError("locality_wait must be >= 0")

    def aggregate_cluster(self) -> ClusterConfig:
        """The slot capacity a job-master-level simulator would see."""
        return ClusterConfig(
            self.num_nodes * self.map_slots_per_node,
            self.num_nodes * self.reduce_slots_per_node,
        )


@dataclass(slots=True)
class EmuTask:
    """One executed task attempt: where and when it actually ran."""

    kind: str  # "map" | "reduce"
    job_id: int
    index: int
    node_id: int
    start: float
    end: float = math.inf
    shuffle_end: Optional[float] = None
    first_wave: bool = False
    #: Attempt number (speculative backups are attempt 1).
    attempt: int = 0
    speculative: bool = False
    #: True if this attempt lost a speculative race and was killed.
    killed: bool = False
    #: True if this attempt failed partway and was retried.
    failed: bool = False
    #: "node" | "rack" | "remote" when locality is modeled, else None.
    locality: "str | None" = None


@dataclass(slots=True)
class EmulationResult:
    """Ground-truth execution record of one emulated workload run."""

    scheduler_name: str
    jobs: list[JobResult]
    tasks: list[EmuTask]
    histories: list[JobHistoryWriter]
    makespan: float
    events_processed: int
    wall_clock_seconds: float

    def completion_times(self) -> dict[int, float]:
        """Job id -> absolute completion time (completed jobs)."""
        return {
            j.job_id: j.completion_time for j in self.jobs if j.completion_time is not None
        }

    def durations(self) -> dict[int, float]:
        """Job id -> completion - submission."""
        return {j.job_id: j.duration for j in self.jobs if j.duration is not None}

    def relative_deadline_exceeded(self) -> float:
        """The paper's utility metric over the emulated run."""
        return sum(j.relative_deadline_exceeded() for j in self.jobs)

    def history_text(self) -> str:
        """Combined JobTracker history log of every job, MRProfiler input."""
        return JobHistoryWriter.combine(self.histories)

    def locality_fractions(self) -> dict[str, float]:
        """Fraction of successful map attempts at each locality level."""
        counts = {"node": 0, "rack": 0, "remote": 0}
        for task in self.tasks:
            if task.kind == "map" and task.locality is not None and not (
                task.killed or task.failed
            ):
                counts[task.locality] += 1
        total = sum(counts.values())
        if total == 0:
            raise ValueError("no locality data: run with model_locality=True")
        return {k: v / total for k, v in counts.items()}


class HadoopClusterEmulator:
    """Heartbeat-level emulation of a Hadoop cluster executing a trace."""

    def __init__(
        self,
        config: Optional[EmulatorConfig] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.config = config or EmulatorConfig()
        if scheduler is None:
            from ..schedulers.fifo import FIFOScheduler

            scheduler = FIFOScheduler()
        self.scheduler = scheduler

    # ------------------------------------------------------------------ #

    def run(self, trace: Sequence[TraceJob]) -> EmulationResult:
        """Execute the trace on the emulated cluster."""
        # Feeds only the result's wall_clock_seconds metric, never a
        # simulated timestamp; walltime is the sanctioned site.
        wall_start = perf_seconds()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        nodes = [
            TaskTracker(
                node_id=i,
                map_slots=cfg.map_slots_per_node,
                reduce_slots=cfg.reduce_slots_per_node,
                speed_factor=(
                    float(rng.lognormal(-cfg.node_speed_sigma**2 / 2, cfg.node_speed_sigma))
                    if cfg.node_speed_sigma > 0
                    else 1.0
                ),
            )
            for i in range(cfg.num_nodes)
        ]

        jobs = [Job(i, tj) for i, tj in enumerate(trace)]
        histories = [JobHistoryWriter(i, tj.profile.name) for i, tj in enumerate(trace)]
        tasks: list[EmuTask] = []
        # Per-job first-wave fillers: (reduce index, node, EmuTask, position).
        fillers: dict[int, list[tuple[int, TaskTracker, EmuTask, int]]] = {}
        # Speculation state (only maintained when enabled): active map
        # attempt positions per (job, index), cancelled attempt positions
        # whose completion events must be ignored, and per-job completed
        # map duration statistics for the straggler threshold.
        speculate = cfg.speculative_execution
        map_attempts: dict[tuple[int, int], list[int]] = {}
        cancelled: set[int] = set()
        map_dur_sum: dict[int, float] = {}
        map_dur_cnt: dict[int, int] = {}
        # Failure injection: next attempt number per (job, kind, index),
        # shared with speculation so attempt ids stay unique per task.
        inject_failures = cfg.task_failure_rate > 0.0
        attempt_no: dict[tuple[int, str, int], int] = {}

        def next_attempt(job_id: int, kind: str, index: int) -> int:
            key = (job_id, kind, index)
            n = attempt_no.get(key, 0)
            attempt_no[key] = n + 1
            return n

        def attempt_fails(job_id: int, kind: str, index: int) -> bool:
            """Draw failure; the final allowed attempt always succeeds."""
            if not inject_failures:
                return False
            if attempt_no.get((job_id, kind, index), 1) >= cfg.max_task_attempts:
                return False
            return bool(rng.random() < cfg.task_failure_rate)

        # Locality state (only when modeled): HDFS replica placement per
        # job, pending map-index pools, node/rack lookup tables, and the
        # delay-scheduling skip clocks.
        locality = cfg.model_locality
        placement = (
            HdfsPlacement(cfg.num_nodes, cfg.rack_size, cfg.replication)
            if locality
            else None
        )
        job_replicas: dict[int, list[tuple[int, ...]]] = {}
        pending_map_pool: dict[int, set[int]] = {}
        node_local_idx: dict[int, dict[int, list[int]]] = {}
        rack_local_idx: dict[int, dict[int, list[int]]] = {}
        skip_since: dict[int, float] = {}

        def locality_penalty(level: str) -> float:
            if level == "node":
                return 1.0
            if level == "rack":
                return cfg.rack_penalty
            return cfg.remote_penalty

        def select_map_task(job: Job, node: TaskTracker, now: float):
            """Delay scheduling: pick this job's map for this node.

            Returns ``(index, locality_level)`` or ``None`` to skip the
            job at this node for now (it is still waiting for locality).
            """
            pending = pending_map_pool[job.job_id]
            for idx in node_local_idx[job.job_id].get(node.node_id, ()):
                if idx in pending:
                    skip_since.pop(job.job_id, None)
                    return idx, "node"
            # No node-local data here: how long has the job been waiting?
            waited = now - skip_since.setdefault(job.job_id, now)
            rack = placement.rack_of(node.node_id)
            if cfg.locality_wait > 0 and waited < cfg.locality_wait:
                return None
            for idx in rack_local_idx[job.job_id].get(rack, ()):
                if idx in pending:
                    return idx, "rack"
            if cfg.locality_wait > 0 and waited < 2 * cfg.locality_wait:
                return None
            return next(iter(pending)), "remote"
        agg_cluster = cfg.aggregate_cluster()
        job_q: list[Job] = []
        submit_order = sorted(range(len(jobs)), key=lambda i: jobs[i].submit_time)
        next_submit_pos = 0  # index into submit_order of the next future submission
        active = 0
        completed = 0

        heap: list[tuple] = []
        seq = 0

        def push(t: float, pri: int, kind_a: int, kind_b: int) -> None:
            nonlocal seq
            heappush(heap, (t, pri, seq, kind_a, kind_b))
            seq += 1

        def jitter() -> float:
            if cfg.task_jitter_sigma <= 0:
                return 1.0
            return float(rng.lognormal(-cfg.task_jitter_sigma**2 / 2, cfg.task_jitter_sigma))

        for i in submit_order:
            push(jobs[i].submit_time, _SUBMIT, i, -1)
        for node in nodes:
            offset = cfg.heartbeat_interval * node.node_id / cfg.num_nodes
            first = trace[submit_order[0]].submit_time + offset if trace else offset
            push(first, _HEARTBEAT, node.node_id, -1)

        def map_eligible(job: Job) -> bool:
            if job.state is not JobState.RUNNING or job.pending_maps <= 0:
                return False
            cap = job.wanted_map_slots
            return cap is None or job.running_maps < cap

        def reduce_eligible(job: Job) -> bool:
            if job.state is not JobState.RUNNING or job.pending_reduces <= 0:
                return False
            if job.map_fraction_completed() < cfg.min_map_percent_completed:
                return False
            cap = job.wanted_reduce_slots
            return cap is None or job.running_reduces < cap

        def finish_job(job: Job, now: float) -> None:
            nonlocal active, completed
            job.state = JobState.COMPLETED
            job.completion_time = now
            job_q.remove(job)
            self.scheduler.on_job_departure(job, now)
            histories[job.job_id].job_finished(now, job.num_maps, job.num_reduces)
            active -= 1
            completed += 1

        def complete_reduce(job: Job, task: EmuTask, node: TaskTracker, now: float) -> None:
            node.release_reduce()
            if task.failed:
                histories[job.job_id].reduce_failed(
                    task.index, now, node.hostname, attempt=task.attempt
                )
                job.reduces_dispatched -= 1
                job.requeued_reduces.append(task.index)
                return
            job.reduces_completed += 1
            histories[job.job_id].reduce_finished(
                task.index, task.shuffle_end, task.shuffle_end, now, node.hostname,
                attempt=task.attempt,
            )
            if job.is_complete:
                finish_job(job, now)

        events = 0
        while heap:
            now, pri, _s, a, b = heappop(heap)
            events += 1

            if pri == _MAP_DONE:
                job = jobs[a]
                task_pos = b
                if speculate and task_pos in cancelled:
                    # A killed speculative loser: its slot was already
                    # freed when the winner finished.
                    cancelled.discard(task_pos)
                    continue
                task = tasks[task_pos]
                node = nodes[task.node_id]
                node.release_map()
                task.end = now
                if task.failed:
                    # The attempt died partway: log it, requeue the task
                    # for a fresh attempt at a later heartbeat.
                    histories[job.job_id].map_failed(
                        task.index, now, node.hostname, attempt=task.attempt
                    )
                    job.maps_dispatched -= 1
                    if locality:
                        pending_map_pool[job.job_id].add(task.index)
                    else:
                        job.requeued_maps.append(task.index)
                    if speculate:
                        positions = map_attempts.get((job.job_id, task.index))
                        if positions and task_pos in positions:
                            positions.remove(task_pos)
                            if not positions:
                                del map_attempts[(job.job_id, task.index)]
                    continue
                job.maps_completed += 1
                histories[job.job_id].map_finished(
                    task.index, now, node.hostname, attempt=task.attempt
                )
                if speculate:
                    key = (job.job_id, task.index)
                    for pos in map_attempts.pop(key, []):
                        if pos == task_pos:
                            continue
                        loser = tasks[pos]
                        nodes[loser.node_id].release_map()
                        loser.end = now
                        loser.killed = True
                        cancelled.add(pos)
                        histories[job.job_id].map_killed(
                            task.index, now, nodes[loser.node_id].hostname,
                            attempt=loser.attempt,
                        )
                    map_dur_sum[job.job_id] = map_dur_sum.get(job.job_id, 0.0) + (
                        now - task.start
                    )
                    map_dur_cnt[job.job_id] = map_dur_cnt.get(job.job_id, 0) + 1
                if job.map_stage_complete and job.map_stage_end is None:
                    job.map_stage_end = now
                    # Resolve first-wave fillers: their shuffle completes a
                    # first-shuffle duration after the last map, then the
                    # reduce phase runs on the hosting node.
                    for ridx, rnode, rtask, rpos in fillers.pop(job.job_id, []):
                        sh_end = now + job.profile.first_shuffle_duration(ridx) * jitter()
                        red_end = sh_end + (
                            job.profile.reduce_duration(ridx) * rnode.speed_factor * jitter()
                        )
                        rtask.shuffle_end = sh_end
                        rtask.end = red_end
                        if attempt_fails(job.job_id, "reduce", ridx):
                            rtask.failed = True
                            rtask.end = now + (red_end - now) * float(
                                rng.uniform(0.1, 0.9)
                            )
                            rtask.shuffle_end = min(rtask.shuffle_end, rtask.end)
                        push(rtask.end, _RED_DONE, job.job_id, rpos)
                    if job.num_reduces == 0:
                        finish_job(job, now)

            elif pri == _RED_DONE:
                job = jobs[a]
                task = tasks[b]
                complete_reduce(job, task, nodes[task.node_id], now)

            elif pri == _SUBMIT:
                job = jobs[a]
                job.state = JobState.RUNNING
                job_q.append(job)
                active += 1
                next_submit_pos += 1
                self.scheduler.on_job_arrival(job, now, agg_cluster)
                histories[job.job_id].job_submitted(now)
                histories[job.job_id].job_launched(now, job.num_maps, job.num_reduces)
                if locality:
                    replicas = placement.place_job(job.num_maps, rng)
                    job_replicas[job.job_id] = replicas
                    pending_map_pool[job.job_id] = set(range(job.num_maps))
                    by_node: dict[int, list[int]] = {}
                    by_rack: dict[int, list[int]] = {}
                    for idx, reps in enumerate(replicas):
                        for rep in reps:
                            by_node.setdefault(rep, []).append(idx)
                            by_rack.setdefault(placement.rack_of(rep), []).append(idx)
                    node_local_idx[job.job_id] = by_node
                    rack_local_idx[job.job_id] = by_rack

            elif pri == _HEARTBEAT:
                node = nodes[a]
                # Assign this tracker's free slots per the scheduling policy.
                while node.free_map_slots > 0:
                    chosen = None  # (job, index, locality level or None)
                    excluded: set[int] = set()
                    while True:
                        candidates = [
                            j for j in job_q
                            if j.job_id not in excluded and map_eligible(j)
                        ]
                        if not candidates:
                            break
                        job = self.scheduler.choose_next_map_task(candidates)
                        if job is None:
                            break
                        if locality:
                            selected = select_map_task(job, node, now)
                            if selected is None:
                                # Delay scheduling: the job keeps waiting
                                # for a (rack-)local slot; offer the slot
                                # to the next job instead.
                                excluded.add(job.job_id)
                                continue
                            chosen = (job, selected[0], selected[1])
                        else:
                            if job.requeued_maps:
                                index = job.requeued_maps.pop()
                            else:
                                index = job.next_map_index
                                job.next_map_index += 1
                            chosen = (job, index, None)
                        break
                    if chosen is None:
                        break
                    job, index, level = chosen
                    if locality:
                        pending_map_pool[job.job_id].discard(index)
                    job.maps_dispatched += 1
                    if job.start_time is None:
                        job.start_time = now
                    node.occupy_map()
                    attempt = next_attempt(job.job_id, "map", index)
                    duration = job.profile.map_duration(index) * node.speed_factor * jitter()
                    if level is not None:
                        duration *= locality_penalty(level)
                    if attempt_fails(job.job_id, "map", index):
                        # The attempt dies partway through its work.
                        duration *= float(rng.uniform(0.1, 0.9))
                        failed = True
                    else:
                        failed = False
                    task = EmuTask(
                        "map", job.job_id, index, node.node_id, now,
                        now + duration, attempt=attempt, failed=failed,
                        locality=level,
                    )
                    tasks.append(task)
                    if speculate:
                        map_attempts[(job.job_id, index)] = [len(tasks) - 1]
                    histories[job.job_id].map_started(
                        index, now, node.hostname, attempt=attempt
                    )
                    push(now + duration, _MAP_DONE, job.job_id, len(tasks) - 1)
                while node.free_reduce_slots > 0:
                    candidates = [j for j in job_q if reduce_eligible(j)]
                    if not candidates:
                        break
                    job = self.scheduler.choose_next_reduce_task(candidates)
                    if job is None:
                        break
                    if job.requeued_reduces:
                        index = job.requeued_reduces.pop()
                    else:
                        index = job.next_reduce_index
                        job.next_reduce_index += 1
                    job.reduces_dispatched += 1
                    if job.start_time is None:
                        job.start_time = now
                    node.occupy_reduce()
                    r_attempt = next_attempt(job.job_id, "reduce", index)
                    histories[job.job_id].reduce_started(
                        index, now, node.hostname, attempt=r_attempt
                    )
                    if not job.map_stage_complete:
                        task = EmuTask(
                            "reduce", job.job_id, index, node.node_id, now,
                            first_wave=True, attempt=r_attempt,
                        )
                        tasks.append(task)
                        fillers.setdefault(job.job_id, []).append(
                            (index, node, task, len(tasks) - 1)
                        )
                    else:
                        shuffle = job.profile.typical_shuffle_duration(index) * jitter()
                        sh_end = now + shuffle
                        red_end = sh_end + (
                            job.profile.reduce_duration(index) * node.speed_factor * jitter()
                        )
                        task = EmuTask(
                            "reduce", job.job_id, index, node.node_id, now,
                            end=red_end, shuffle_end=sh_end, attempt=r_attempt,
                        )
                        if attempt_fails(job.job_id, "reduce", index):
                            task.failed = True
                            task.end = now + (red_end - now) * float(rng.uniform(0.1, 0.9))
                            task.shuffle_end = min(task.shuffle_end, task.end)
                        tasks.append(task)
                        push(task.end, _RED_DONE, job.job_id, len(tasks) - 1)

                if speculate:
                    # Hadoop launches a backup copy of a straggling map
                    # when a job has no pending maps left and a tracker
                    # has spare capacity.
                    while node.free_map_slots > 0:
                        backup = None
                        for job in job_q:
                            if (
                                job.state is not JobState.RUNNING
                                or job.pending_maps > 0
                                or job.map_stage_complete
                                or map_dur_cnt.get(job.job_id, 0)
                                < cfg.speculation_min_completed
                            ):
                                continue
                            mean = map_dur_sum[job.job_id] / map_dur_cnt[job.job_id]
                            threshold = cfg.speculation_slowness * mean
                            for key, positions in map_attempts.items():
                                if key[0] != job.job_id or len(positions) != 1:
                                    continue
                                primary = tasks[positions[0]]
                                if primary.node_id == node.node_id:
                                    continue  # back up on a different node
                                if now - primary.start > threshold:
                                    backup = (job, key, positions)
                                    break
                            if backup is not None:
                                break
                        if backup is None:
                            break
                        job, key, positions = backup
                        index = key[1]
                        node.occupy_map()
                        b_attempt = next_attempt(job.job_id, "map", index)
                        duration = (
                            job.profile.map_duration(index)
                            * node.speed_factor
                            * jitter()
                        )
                        b_level = None
                        if locality:
                            b_level = locality_of(
                                node.node_id, job_replicas[job.job_id][index], placement
                            )
                            duration *= locality_penalty(b_level)
                        task = EmuTask(
                            "map", job.job_id, index, node.node_id, now,
                            now + duration, attempt=b_attempt, speculative=True,
                            locality=b_level,
                        )
                        tasks.append(task)
                        positions.append(len(tasks) - 1)
                        histories[job.job_id].map_started(
                            index, now, node.hostname, attempt=b_attempt
                        )
                        push(now + duration, _MAP_DONE, job.job_id, len(tasks) - 1)

                # Re-arm the heartbeat.  When the cluster is idle and work
                # only arrives later, skip ahead to just after the next
                # submission instead of heartbeating through the gap.
                if completed < len(jobs):
                    next_beat = now + cfg.heartbeat_interval
                    if active == 0 and next_submit_pos < len(submit_order):
                        next_submit = jobs[submit_order[next_submit_pos]].submit_time
                        phase = cfg.heartbeat_interval * node.node_id / cfg.num_nodes
                        next_beat = max(next_beat, next_submit + phase)
                    push(next_beat, _HEARTBEAT, node.node_id, -1)

            else:  # pragma: no cover
                raise AssertionError(f"unknown event priority {pri}")

        wall = elapsed_since(wall_start)
        makespan = max(
            (j.completion_time for j in jobs if j.completion_time is not None), default=0.0
        )
        return EmulationResult(
            scheduler_name=self.scheduler.name,
            jobs=[JobResult.from_job(j) for j in jobs],
            tasks=tasks,
            histories=histories,
            makespan=makespan,
            events_processed=events,
            wall_clock_seconds=wall,
        )
