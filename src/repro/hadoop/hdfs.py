"""HDFS block placement — the substrate behind map-task locality.

The paper's testbed stores input on HDFS with "the replication level ...
set to 3" (Section IV-B); each map task prefers running where one of its
block's replicas lives.  SimMR's engine deliberately ignores placement
(Section III: a non-goal), but the *emulator* can model it, which is
what makes delay scheduling (the paper's reference [3]) expressible.

The placement policy mirrors HDFS's default for an off-cluster writer:
three replicas on distinct nodes, at most two per rack (one "primary"
rack holding two replicas, a second rack holding the third).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HdfsPlacement", "locality_of"]


@dataclass(frozen=True, slots=True)
class HdfsPlacement:
    """Replica placement over a racked cluster.

    Parameters
    ----------
    num_nodes:
        Worker count; node ids are ``0..num_nodes-1``.
    rack_size:
        Nodes per rack (the paper's testbed: two racks of ~32).
    replication:
        Replicas per block (HDFS default 3; clamped to ``num_nodes``).
    """

    num_nodes: int
    rack_size: int = 32
    replication: int = 3

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.rack_size < 1:
            raise ValueError(f"rack_size must be >= 1, got {self.rack_size}")
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")

    def rack_of(self, node: int) -> int:
        """Rack id of a node."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside cluster of {self.num_nodes}")
        return node // self.rack_size

    @property
    def num_racks(self) -> int:
        return -(-self.num_nodes // self.rack_size)

    def place_block(self, rng: np.random.Generator) -> tuple[int, ...]:
        """Replica nodes for one block: distinct nodes, <= 2 per rack."""
        k = min(self.replication, self.num_nodes)
        first = int(rng.integers(self.num_nodes))
        replicas = [first]
        if k >= 2:
            # Second replica off-rack when another rack exists.
            others = [
                n for n in range(self.num_nodes)
                if self.rack_of(n) != self.rack_of(first)
            ]
            pool = others if others else [n for n in range(self.num_nodes) if n != first]
            replicas.append(int(rng.choice(pool)))
        while len(replicas) < k:
            # Remaining replicas: same rack as the second, distinct nodes.
            anchor_rack = self.rack_of(replicas[1])
            pool = [
                n for n in range(self.num_nodes)
                if n not in replicas and self.rack_of(n) == anchor_rack
            ]
            if not pool:
                pool = [n for n in range(self.num_nodes) if n not in replicas]
            replicas.append(int(rng.choice(pool)))
        return tuple(replicas)

    def place_job(self, num_blocks: int, rng: np.random.Generator) -> list[tuple[int, ...]]:
        """Replica sets for every input block (= map task) of a job."""
        if num_blocks < 0:
            raise ValueError(f"num_blocks must be >= 0, got {num_blocks}")
        return [self.place_block(rng) for _ in range(num_blocks)]


def locality_of(node: int, replicas: tuple[int, ...], placement: HdfsPlacement) -> str:
    """"node", "rack" or "remote": how close ``node`` is to the data."""
    if node in replicas:
        return "node"
    node_rack = placement.rack_of(node)
    if any(placement.rack_of(r) == node_rack for r in replicas):
        return "rack"
    return "remote"
