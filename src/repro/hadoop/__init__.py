"""Fine-grained Hadoop cluster emulator: the validation ground truth.

Stands in for the paper's 66-node testbed — TaskTrackers, heartbeats,
per-node speed variation, and JobTracker history logs that MRProfiler
consumes.
"""

from .emulator import EmulationResult, EmulatorConfig, EmuTask, HadoopClusterEmulator
from .hdfs import HdfsPlacement, locality_of
from .history import BASE_EPOCH_MS, JobHistoryWriter, format_job_id, ms
from .node import TaskTracker

__all__ = [
    "EmulationResult",
    "EmulatorConfig",
    "EmuTask",
    "HadoopClusterEmulator",
    "HdfsPlacement",
    "locality_of",
    "BASE_EPOCH_MS",
    "JobHistoryWriter",
    "format_job_id",
    "ms",
    "TaskTracker",
]
