"""Hadoop 0.20-style job-history log writer.

The paper's MRProfiler "extracts the job performance metrics by
processing the counters and logs stored at the JobTracker at the end of
each job" (Section III-A).  Our testbed substitute must therefore emit
logs in the JobTracker history format so the MRProfiler pipeline is
exercised for real — parsing text logs, not handed in-memory objects.

The format is line-oriented ``Entity KEY="value" ...`` records, the
relevant subset of Hadoop 0.20's ``JobHistory``:

* ``Job``: SUBMIT_TIME / LAUNCH_TIME / TOTAL_MAPS / TOTAL_REDUCES /
  FINISH_TIME / JOB_STATUS;
* ``MapAttempt``: START_TIME then FINISH_TIME + TASK_STATUS + HOSTNAME;
* ``ReduceAttempt``: START_TIME then SHUFFLE_FINISHED + SORT_FINISHED +
  FINISH_TIME + TASK_STATUS + HOSTNAME.

All timestamps are epoch milliseconds, as in real logs; simulated seconds
are mapped from :data:`BASE_EPOCH_MS` (1 Nov 2010, the start of the
paper's six-month trace collection window).
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["BASE_EPOCH_MS", "JobHistoryWriter", "format_job_id", "ms"]

#: 2010-11-01 00:00:00 UTC, in epoch milliseconds.
BASE_EPOCH_MS = 1288569600000

#: JobTracker start-time identifier used in job ids (a real JobTracker
#: embeds its start timestamp, e.g. ``job_201011010000_0001``).
_JT_ID = "201011010000"


def ms(sim_seconds: float) -> int:
    """Simulated seconds -> epoch milliseconds."""
    return BASE_EPOCH_MS + int(round(sim_seconds * 1000.0))


def format_job_id(serial: int) -> str:
    """``job_<jobtracker-start>_<serial>`` as Hadoop prints it (1-based)."""
    return f"job_{_JT_ID}_{serial + 1:04d}"


def _attempt_id(job_serial: int, kind: str, index: int, attempt: int = 0) -> str:
    tag = "m" if kind == "map" else "r"
    return f"attempt_{_JT_ID}_{job_serial + 1:04d}_{tag}_{index:06d}_{attempt}"


def _task_id(job_serial: int, kind: str, index: int) -> str:
    tag = "m" if kind == "map" else "r"
    return f"task_{_JT_ID}_{job_serial + 1:04d}_{tag}_{index:06d}"


class JobHistoryWriter:
    """Accumulates history lines for one job and renders the log text."""

    def __init__(self, job_serial: int, job_name: str) -> None:
        self.job_serial = job_serial
        self.job_id = format_job_id(job_serial)
        self.job_name = job_name
        self._lines: list[str] = []

    # -- job-level records --------------------------------------------------

    def job_submitted(self, submit_time: float) -> None:
        self._lines.append(
            f'Job JOBID="{self.job_id}" JOBNAME="{self.job_name}" USER="simmr" '
            f'SUBMIT_TIME="{ms(submit_time)}" JOBCONF="hdfs://namenode/job.xml"'
        )

    def job_launched(self, launch_time: float, total_maps: int, total_reduces: int) -> None:
        self._lines.append(
            f'Job JOBID="{self.job_id}" LAUNCH_TIME="{ms(launch_time)}" '
            f'TOTAL_MAPS="{total_maps}" TOTAL_REDUCES="{total_reduces}" JOB_STATUS="PREP"'
        )

    def job_finished(self, finish_time: float, maps: int, reduces: int) -> None:
        self._lines.append(
            f'Job JOBID="{self.job_id}" FINISH_TIME="{ms(finish_time)}" '
            f'JOB_STATUS="SUCCESS" FINISHED_MAPS="{maps}" FINISHED_REDUCES="{reduces}" '
            f'FAILED_MAPS="0" FAILED_REDUCES="0"'
        )

    # -- attempt records ------------------------------------------------------

    def map_started(
        self, index: int, start_time: float, hostname: str, attempt: int = 0
    ) -> None:
        self._lines.append(
            f'MapAttempt TASK_TYPE="MAP" TASKID="{_task_id(self.job_serial, "map", index)}" '
            f'TASK_ATTEMPT_ID="{_attempt_id(self.job_serial, "map", index, attempt)}" '
            f'START_TIME="{ms(start_time)}" TRACKER_NAME="tracker_{hostname}" HTTP_PORT="50060"'
        )

    def map_finished(
        self, index: int, finish_time: float, hostname: str, attempt: int = 0
    ) -> None:
        self._lines.append(
            f'MapAttempt TASK_TYPE="MAP" TASKID="{_task_id(self.job_serial, "map", index)}" '
            f'TASK_ATTEMPT_ID="{_attempt_id(self.job_serial, "map", index, attempt)}" '
            f'TASK_STATUS="SUCCESS" FINISH_TIME="{ms(finish_time)}" HOSTNAME="{hostname}"'
        )

    def map_failed(
        self, index: int, fail_time: float, hostname: str, attempt: int = 0
    ) -> None:
        """A failed attempt (will be retried as a new attempt)."""
        self._lines.append(
            f'MapAttempt TASK_TYPE="MAP" TASKID="{_task_id(self.job_serial, "map", index)}" '
            f'TASK_ATTEMPT_ID="{_attempt_id(self.job_serial, "map", index, attempt)}" '
            f'TASK_STATUS="FAILED" FINISH_TIME="{ms(fail_time)}" HOSTNAME="{hostname}" '
            f'ERROR="java.io.IOException: task failed"'
        )

    def map_killed(
        self, index: int, kill_time: float, hostname: str, attempt: int = 0
    ) -> None:
        """A killed attempt (lost speculative race or preempted)."""
        self._lines.append(
            f'MapAttempt TASK_TYPE="MAP" TASKID="{_task_id(self.job_serial, "map", index)}" '
            f'TASK_ATTEMPT_ID="{_attempt_id(self.job_serial, "map", index, attempt)}" '
            f'TASK_STATUS="KILLED" FINISH_TIME="{ms(kill_time)}" HOSTNAME="{hostname}"'
        )

    def reduce_started(
        self, index: int, start_time: float, hostname: str, attempt: int = 0
    ) -> None:
        self._lines.append(
            f'ReduceAttempt TASK_TYPE="REDUCE" '
            f'TASKID="{_task_id(self.job_serial, "reduce", index)}" '
            f'TASK_ATTEMPT_ID="{_attempt_id(self.job_serial, "reduce", index, attempt)}" '
            f'START_TIME="{ms(start_time)}" TRACKER_NAME="tracker_{hostname}" HTTP_PORT="50060"'
        )

    def reduce_failed(
        self, index: int, fail_time: float, hostname: str, attempt: int = 0
    ) -> None:
        """A failed reduce attempt (will be retried)."""
        self._lines.append(
            f'ReduceAttempt TASK_TYPE="REDUCE" '
            f'TASKID="{_task_id(self.job_serial, "reduce", index)}" '
            f'TASK_ATTEMPT_ID="{_attempt_id(self.job_serial, "reduce", index, attempt)}" '
            f'TASK_STATUS="FAILED" FINISH_TIME="{ms(fail_time)}" HOSTNAME="{hostname}" '
            f'ERROR="java.io.IOException: task failed"'
        )

    def reduce_killed(
        self, index: int, kill_time: float, hostname: str, attempt: int = 0
    ) -> None:
        """A killed reduce attempt."""
        self._lines.append(
            f'ReduceAttempt TASK_TYPE="REDUCE" '
            f'TASKID="{_task_id(self.job_serial, "reduce", index)}" '
            f'TASK_ATTEMPT_ID="{_attempt_id(self.job_serial, "reduce", index, attempt)}" '
            f'TASK_STATUS="KILLED" FINISH_TIME="{ms(kill_time)}" HOSTNAME="{hostname}"'
        )

    def reduce_finished(
        self,
        index: int,
        shuffle_finished: float,
        sort_finished: float,
        finish_time: float,
        hostname: str,
        attempt: int = 0,
    ) -> None:
        self._lines.append(
            f'ReduceAttempt TASK_TYPE="REDUCE" '
            f'TASKID="{_task_id(self.job_serial, "reduce", index)}" '
            f'TASK_ATTEMPT_ID="{_attempt_id(self.job_serial, "reduce", index, attempt)}" '
            f'TASK_STATUS="SUCCESS" SHUFFLE_FINISHED="{ms(shuffle_finished)}" '
            f'SORT_FINISHED="{ms(sort_finished)}" FINISH_TIME="{ms(finish_time)}" '
            f'HOSTNAME="{hostname}"'
        )

    # -- output -----------------------------------------------------------------

    def render(self) -> str:
        """The job's history log text (one record per line)."""
        return "\n".join(self._lines) + "\n"

    @staticmethod
    def combine(writers: Iterable["JobHistoryWriter"]) -> str:
        """Concatenate several jobs' logs into one JobTracker history file."""
        return "".join(w.render() for w in writers)
