"""TaskTracker (worker node) state for the fine-grained cluster emulator.

The real testbed (paper Section IV-B): 64 worker nodes, each configured
with a single map and a single reduce slot, heartbeating to the
JobTracker.  :class:`TaskTracker` models one such node: its slot
occupancy and a per-node speed factor (hardware is never perfectly
homogeneous; the factor multiplies task durations executed on the node).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TaskTracker"]


@dataclass(slots=True)
class TaskTracker:
    """One worker node: slot counts, occupancy and relative speed."""

    node_id: int
    map_slots: int = 1
    reduce_slots: int = 1
    #: Duration multiplier for tasks on this node (1.0 = nominal speed).
    speed_factor: float = 1.0
    running_maps: int = 0
    running_reduces: int = 0

    def __post_init__(self) -> None:
        if self.map_slots < 0 or self.reduce_slots < 0:
            raise ValueError("slot counts must be non-negative")
        if self.speed_factor <= 0:
            raise ValueError(f"speed factor must be > 0, got {self.speed_factor}")

    @property
    def free_map_slots(self) -> int:
        return self.map_slots - self.running_maps

    @property
    def free_reduce_slots(self) -> int:
        return self.reduce_slots - self.running_reduces

    @property
    def hostname(self) -> str:
        """Stable synthetic hostname used in job-history logs."""
        return f"node{self.node_id:03d}"

    def occupy_map(self) -> None:
        if self.free_map_slots <= 0:
            raise RuntimeError(f"{self.hostname}: no free map slot")
        self.running_maps += 1

    def release_map(self) -> None:
        if self.running_maps <= 0:
            raise RuntimeError(f"{self.hostname}: releasing an idle map slot")
        self.running_maps -= 1

    def occupy_reduce(self) -> None:
        if self.free_reduce_slots <= 0:
            raise RuntimeError(f"{self.hostname}: no free reduce slot")
        self.running_reduces += 1

    def release_reduce(self) -> None:
        if self.running_reduces <= 0:
            raise RuntimeError(f"{self.hostname}: releasing an idle reduce slot")
        self.running_reduces -= 1
