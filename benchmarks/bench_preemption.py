"""Preemption ablation bench: the Figure 7(a) "bump" explained.

The paper attributes the deadline-miss bump around 100 s mean
inter-arrival to the scheduler's inability to preempt running tasks.
This bench re-runs the sweep with kill-based preemption (``MinEDF+P``)
and checks that the bump region improves while sparse-arrival points
stay unchanged.

A second test micro-benchmarks the victim-selection sort inside
``SimulatorEngine._kill_tasks`` — the hot per-preemption operation —
comparing the old per-item-lambda sort against the shipped
``operator.itemgetter`` decorate-sort, and records both in
``BENCH_preemption.json``.

A third test times the columnar kernel's segmented-replay mode on a
live preemptive run (MinEDF+P) against the object loop, pins the two
engines' event-stream digests bit-for-bit identical, and adds a
``preemptive_kernel_replay`` section to the same JSON.
"""

from __future__ import annotations

import json
import time
from operator import itemgetter
from pathlib import Path

import numpy as np

from repro.core import ClusterConfig, ColumnarEngine, SimulatorEngine, TraceJob
from repro.core.walltime import elapsed_since, perf_seconds
from repro.experiments.performance import make_performance_trace
from repro.experiments.preemption import run_preemption_ablation
from repro.sanitize.digest import DigestRecorder
from repro.schedulers import MinEDFScheduler

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_preemption.json"

RUNS = 20


def _merge_report(update: dict) -> None:
    """Read-modify-write the JSON so each test contributes its section."""
    report: dict = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text())
    report.update(update)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def test_preemption_removes_the_bump(benchmark, once):
    result = once(benchmark, run_preemption_ablation, runs=RUNS)
    print()
    print(result)
    assert result.preemption_helps_under_load()
    # In the loaded region preemption should help substantially.
    loaded = [v for ia, v in result.cells.items() if ia <= 100.0]
    plain = sum(v["MinEDF"] for v in loaded)
    preempt = sum(v["MinEDF+P"] for v in loaded)
    assert preempt < 0.8 * plain
    # At very sparse arrivals there is (almost) nothing to preempt.
    sparse = result.cells[max(result.cells)]
    assert abs(sparse["MinEDF+P"] - sparse["MinEDF"]) < 1.0


def _lambda_sort(running):
    """The pre-optimization victim order (kept here for comparison)."""
    return sorted(running.items(), key=lambda kv: -kv[1][1])


def _itemgetter_sort(running):
    """The shipped decorate-sort from ``SimulatorEngine._kill_tasks``."""
    decorated = [
        (start, index, dep_seq, record)
        for index, (dep_seq, start, record) in running.items()
    ]
    decorated.sort(key=itemgetter(0), reverse=True)
    return decorated


def test_victim_sort_microbench():
    # A plausible running-task table: 64 slots' worth of attempts with
    # repeating start times (ties must preserve insertion order).
    running = {
        index: (index % 7, float(index % 16) * 3.0, None) for index in range(64)
    }
    repeats = 2000

    # Semantics first: both orders kill the same victims in the same order.
    by_lambda = [(kv[1][1], kv[0]) for kv in _lambda_sort(running)]
    by_getter = [(item[0], item[1]) for item in _itemgetter_sort(running)]
    assert by_getter == by_lambda

    def time_sort(fn):
        best = float("inf")
        for _ in range(5):
            start = perf_seconds()
            for _ in range(repeats):
                fn(running)
            best = min(best, elapsed_since(start))
        return best

    lambda_s = time_sort(_lambda_sort)
    getter_s = time_sort(_itemgetter_sort)
    speedup = lambda_s / getter_s

    _merge_report(
        {
            "running_tasks": len(running),
            "sort_repeats": repeats,
            "lambda_sort_seconds": lambda_s,
            "itemgetter_sort_seconds": getter_s,
            "victim_sort_speedup": speedup,
            "tie_order_identical": True,
        }
    )
    print(
        f"\nvictim sort ({len(running)} running tasks, best of 5 x {repeats}):"
        f"\nlambda key        : {lambda_s * 1e3:.2f}ms"
        f"\nitemgetter        : {getter_s * 1e3:.2f}ms ({speedup:.2f}x)"
    )
    # The decorate-sort must not be slower; its win is modest but real.
    assert getter_s <= lambda_s * 1.1


def test_preemptive_kernel_replay():
    """Segmented replay runs live MinEDF+P kills faster than the object
    loop and produces the bit-identical event stream (digest-pinned)."""
    rng = np.random.default_rng(0)
    trace = []
    for tj in make_performance_trace(100, mean_interarrival=20.0, seed=0):
        slack = rng.uniform(30, 120) if rng.random() < 0.5 else rng.uniform(500, 3000)
        trace.append(
            TraceJob(tj.profile, tj.submit_time, deadline=tj.submit_time + slack)
        )
    cluster = ClusterConfig(64, 64)

    def best_of(engine_cls, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            engine = engine_cls(
                cluster,
                MinEDFScheduler(preemptive=True),
                preemption=True,
                record_tasks=True,
            )
            start = time.perf_counter()
            result = engine.run(trace)
            best = min(best, time.perf_counter() - start)
        return engine, result, result.events_processed / best

    kengine, kres, kernel_eps = best_of(ColumnarEngine)
    assert kengine.last_path == "kernel", kengine.fallback_reason
    assert kengine.last_kernel_mode == "replay"
    _, ores, object_eps = best_of(SimulatorEngine)

    digests = []
    for engine_cls in (ColumnarEngine, SimulatorEngine):
        recorder = DigestRecorder()
        engine_cls(
            cluster,
            MinEDFScheduler(preemptive=True),
            preemption=True,
            sanitizer=recorder,
        ).run(trace)
        digests.append(recorder.digest.hexdigest())
    assert digests[0] == digests[1]

    kills = sum(1 for r in kres.task_records if r.killed)
    assert kills > 0
    assert ores.events_processed == kres.events_processed
    speedup = kernel_eps / object_eps
    _merge_report(
        {
            "preemptive_kernel_replay": {
                "scheduler": "MinEDF+P",
                "trace_jobs": len(trace),
                "events_processed": kres.events_processed,
                "tasks_killed": kills,
                "kernel_events_per_second": kernel_eps,
                "object_events_per_second": object_eps,
                "speedup": speedup,
                "event_digest": digests[0],
                "digest_identical": True,
            }
        }
    )
    print(
        f"\npreemptive replay: {kernel_eps:,.0f} events/s over "
        f"{kres.events_processed} events, {kills} kills (object "
        f"{object_eps:,.0f} events/s, {speedup:.2f}x), digest {digests[0][:16]}"
    )
    # Heap-bound path (see bench_engine_throughput): must beat the
    # object loop, a 3x ratio is unreachable for a per-event replay.
    assert speedup > 1.0
