"""Preemption ablation bench: the Figure 7(a) "bump" explained.

The paper attributes the deadline-miss bump around 100 s mean
inter-arrival to the scheduler's inability to preempt running tasks.
This bench re-runs the sweep with kill-based preemption (``MinEDF+P``)
and checks that the bump region improves while sparse-arrival points
stay unchanged.

A second test micro-benchmarks the victim-selection sort inside
``SimulatorEngine._kill_tasks`` — the hot per-preemption operation —
comparing the old per-item-lambda sort against the shipped
``operator.itemgetter`` decorate-sort, and records both in
``BENCH_preemption.json``.
"""

from __future__ import annotations

import json
from operator import itemgetter
from pathlib import Path

from repro.core.walltime import elapsed_since, perf_seconds
from repro.experiments.preemption import run_preemption_ablation

REPO_ROOT = Path(__file__).resolve().parent.parent

RUNS = 20


def test_preemption_removes_the_bump(benchmark, once):
    result = once(benchmark, run_preemption_ablation, runs=RUNS)
    print()
    print(result)
    assert result.preemption_helps_under_load()
    # In the loaded region preemption should help substantially.
    loaded = [v for ia, v in result.cells.items() if ia <= 100.0]
    plain = sum(v["MinEDF"] for v in loaded)
    preempt = sum(v["MinEDF+P"] for v in loaded)
    assert preempt < 0.8 * plain
    # At very sparse arrivals there is (almost) nothing to preempt.
    sparse = result.cells[max(result.cells)]
    assert abs(sparse["MinEDF+P"] - sparse["MinEDF"]) < 1.0


def _lambda_sort(running):
    """The pre-optimization victim order (kept here for comparison)."""
    return sorted(running.items(), key=lambda kv: -kv[1][1])


def _itemgetter_sort(running):
    """The shipped decorate-sort from ``SimulatorEngine._kill_tasks``."""
    decorated = [
        (start, index, dep_seq, record)
        for index, (dep_seq, start, record) in running.items()
    ]
    decorated.sort(key=itemgetter(0), reverse=True)
    return decorated


def test_victim_sort_microbench():
    # A plausible running-task table: 64 slots' worth of attempts with
    # repeating start times (ties must preserve insertion order).
    running = {
        index: (index % 7, float(index % 16) * 3.0, None) for index in range(64)
    }
    repeats = 2000

    # Semantics first: both orders kill the same victims in the same order.
    by_lambda = [(kv[1][1], kv[0]) for kv in _lambda_sort(running)]
    by_getter = [(item[0], item[1]) for item in _itemgetter_sort(running)]
    assert by_getter == by_lambda

    def time_sort(fn):
        best = float("inf")
        for _ in range(5):
            start = perf_seconds()
            for _ in range(repeats):
                fn(running)
            best = min(best, elapsed_since(start))
        return best

    lambda_s = time_sort(_lambda_sort)
    getter_s = time_sort(_itemgetter_sort)
    speedup = lambda_s / getter_s

    report = {
        "running_tasks": len(running),
        "sort_repeats": repeats,
        "lambda_sort_seconds": lambda_s,
        "itemgetter_sort_seconds": getter_s,
        "victim_sort_speedup": speedup,
        "tie_order_identical": True,
    }
    (REPO_ROOT / "BENCH_preemption.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    print(
        f"\nvictim sort ({len(running)} running tasks, best of 5 x {repeats}):"
        f"\nlambda key        : {lambda_s * 1e3:.2f}ms"
        f"\nitemgetter        : {getter_s * 1e3:.2f}ms ({speedup:.2f}x)"
    )
    # The decorate-sort must not be slower; its win is modest but real.
    assert getter_s <= lambda_s * 1.1
