"""Preemption ablation bench: the Figure 7(a) "bump" explained.

The paper attributes the deadline-miss bump around 100 s mean
inter-arrival to the scheduler's inability to preempt running tasks.
This bench re-runs the sweep with kill-based preemption (``MinEDF+P``)
and checks that the bump region improves while sparse-arrival points
stay unchanged.
"""

from __future__ import annotations

from repro.experiments.preemption import run_preemption_ablation

RUNS = 20


def test_preemption_removes_the_bump(benchmark, once):
    result = once(benchmark, run_preemption_ablation, runs=RUNS)
    print()
    print(result)
    assert result.preemption_helps_under_load()
    # In the loaded region preemption should help substantially.
    loaded = [v for ia, v in result.cells.items() if ia <= 100.0]
    plain = sum(v["MinEDF"] for v in loaded)
    preempt = sum(v["MinEDF+P"] for v in loaded)
    assert preempt < 0.8 * plain
    # At very sparse arrivals there is (almost) nothing to preempt.
    sparse = result.cells[max(result.cells)]
    assert abs(sparse["MinEDF+P"] - sparse["MinEDF"]) < 1.0
