"""Figure 6: simulation wall-time, SimMR vs Mumak, over trace size.

Paper: a 1148-job six-month trace replays in 1.5 s with SimMR vs 680 s
with Mumak (two orders of magnitude), because Mumak simulates the
TaskTrackers and their heartbeats.  Our Mumak is a lean Python
reimplementation rather than the full Java JobTracker stack, so the
asserted shape is direction + growth: SimMR is several times faster at
every size, and the absolute gap widens with the trace.
"""

from __future__ import annotations

from repro.experiments.performance import run_performance


def test_fig6_simulation_time_vs_jobs(benchmark, once):
    result = once(benchmark, run_performance, (72, 144, 287, 574, 1148))
    print()
    print(result)
    for point in result.points:
        assert point.speedup > 2.0, f"{point.num_jobs} jobs: speedup {point.speedup:.1f}"
    gaps = [p.mumak_seconds - p.simmr_seconds for p in result.points]
    assert gaps[-1] > gaps[0]
    # The 1148-job point the paper highlights.
    full = result.points[-1]
    assert full.num_jobs == 1148
    print(
        f"\n1148 jobs: SimMR {full.simmr_seconds:.2f}s vs Mumak "
        f"{full.mumak_seconds:.2f}s (paper: 1.5s vs 680s)"
    )
