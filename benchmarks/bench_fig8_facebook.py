"""Figure 8: MaxEDF vs MinEDF on the synthetic Facebook workload.

Paper: with traces generated from the fitted LogNormal task-duration
distributions (deadline factors 1.1 / 1.5 / 2), "the MinEDF scheduler
significantly outperforms the MaxEDF policy", consistent with the
testbed-trace results.
"""

from __future__ import annotations

from repro.experiments.schedulers_facebook import run_deadline_comparison_facebook

RUNS = 30


def test_fig8_facebook_deadline_sweep(benchmark, once):
    result = once(
        benchmark,
        run_deadline_comparison_facebook,
        (1.1, 1.5, 2.0),
        (1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0),
        runs=RUNS,
        jobs_per_trace=100,
    )
    print()
    print(result)

    # MinEDF wins in aggregate at every deadline factor.
    for df in (1.1, 1.5, 2.0):
        total_max = sum(v for _, v in result.series(df, "MaxEDF"))
        total_min = sum(v for _, v in result.series(df, "MinEDF"))
        assert total_min < total_max, f"df={df}: MinEDF {total_min} vs MaxEDF {total_max}"

    # Relaxing deadlines shrinks the absolute metric (fewer overruns).
    totals = {
        df: sum(v for _, v in result.series(df, "MinEDF")) for df in (1.1, 2.0)
    }
    assert totals[2.0] < totals[1.1]
