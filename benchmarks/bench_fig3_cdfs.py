"""Figure 3: task-duration CDFs under two different slot allocations.

Paper: the map/shuffle/reduce duration distributions of WordCount under
64x64 and 32x32 allocations are nearly identical — the invariance that
lets one execution's profile replay any allocation.
"""

from __future__ import annotations

from repro.experiments.distributions import run_fig3_cdfs


def test_fig3_duration_cdfs_invariant_to_allocation(benchmark, once):
    result = once(benchmark, run_fig3_cdfs)
    print()
    print(result)
    for phase, ks in result.ks.items():
        assert ks < 0.25, f"{phase} CDFs diverge: KS={ks:.3f}"
