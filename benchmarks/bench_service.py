"""Simulation service: cold vs warm-cache throughput under concurrent clients.

The service's tentpole claims, measured end to end over real HTTP:

* **identity** — every response's ``event_digest`` equals the digest of
  the same (trace, scheduler, config) run through a local
  :func:`simulate_many`;
* **reuse** — replaying the same request mix against a warm cache is
  answered without a single re-simulation (and much faster);
* **backpressure is bounded** — the numbers here come from an
  *unsaturated* server; the 503 path is pinned by ``tests/test_service.py``.

Artifacts: prints the throughput table and writes ``BENCH_service.json``
at the repo root for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.core import ClusterConfig
from repro.core.walltime import elapsed_since, perf_seconds
from repro.parallel import SchedulerSpec, SimTask, simulate_many
from repro.service import ServiceClient, ServiceConfig, SimulationServer
from repro.trace.arrivals import ExponentialArrivals
from repro.trace.synthetic import SyntheticTraceGen
from repro.workloads.apps import make_app_specs

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEDULERS = ("fifo", "maxedf", "minedf", "fair")
CLUSTERS = (ClusterConfig(32, 32), ClusterConfig(64, 64))
CLIENT_THREADS = 4
TRACE_JOBS = 30

#: The warm phase must be answered entirely from the cache.
REQUIRED_WARM_HIT_RATE = 1.0


def make_trace():
    gen = SyntheticTraceGen(
        list(make_app_specs().values()), ExponentialArrivals(40.0), seed=11
    )
    return gen.generate(TRACE_JOBS)


def run_phase(url: str, trace, requests) -> tuple[float, list]:
    """Fire ``requests`` from CLIENT_THREADS concurrent clients."""
    replies: list = [None] * len(requests)
    errors: list[BaseException] = []
    lock = threading.Lock()
    cursor = [0]

    def worker() -> None:
        client = ServiceClient(url, timeout=300.0)
        while True:
            with lock:
                if cursor[0] >= len(requests):
                    return
                index = cursor[0]
                cursor[0] += 1
            name, cluster = requests[index]
            try:
                replies[index] = client.replay(
                    trace, scheduler=name, cluster=cluster, max_retries=10
                )
            except BaseException as exc:  # noqa: BLE001 - reported via assert
                errors.append(exc)
                return

    start = perf_seconds()
    threads = [threading.Thread(target=worker) for _ in range(CLIENT_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = elapsed_since(start)
    assert not errors, errors
    return seconds, replies


def test_service_throughput(benchmark, once):
    trace = make_trace()
    requests = [(name, cluster) for name in SCHEDULERS for cluster in CLUSTERS]
    local = {
        (name, cluster): outcome.result.event_digest
        for (name, cluster), outcome in zip(
            requests,
            simulate_many(
                {"t": trace},
                [
                    SimTask(
                        trace_id="t",
                        scheduler=SchedulerSpec(kind="registry", name=name),
                        cluster=cluster,
                    )
                    for name, cluster in requests
                ],
                cache=None,
            ),
        )
    }

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            port=0,
            workers=CLIENT_THREADS,
            queue_size=len(requests) * 2,
            cache=Path(tmp) / "bench.sqlite",
        )
        with SimulationServer(config).start() as server:
            # Headline number via the shared harness: the cold phase.
            cold_s, cold = once(benchmark, run_phase, server.url, trace, requests)
            warm_s, warm = run_phase(server.url, trace, requests)
            metrics_page = ServiceClient(server.url).metrics()

    cold_rps = len(requests) / cold_s
    warm_rps = len(requests) / warm_s
    warm_hits = sum(r.cached for r in warm)
    hit_rate = warm_hits / len(warm)

    report = {
        "requests_per_phase": len(requests),
        "trace_jobs": TRACE_JOBS,
        "client_threads": CLIENT_THREADS,
        "server_workers": CLIENT_THREADS,
        "cold_seconds": cold_s,
        "cold_requests_per_second": cold_rps,
        "warm_seconds": warm_s,
        "warm_requests_per_second": warm_rps,
        "warm_speedup": cold_s / warm_s,
        "warm_cache_hit_rate": hit_rate,
        "digests_identical_to_local": True,
    }
    (REPO_ROOT / "BENCH_service.json").write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\n{len(requests)} requests x {CLIENT_THREADS} clients over "
        f"{TRACE_JOBS}-job trace:"
        f"\ncold (simulating) : {cold_s:.2f}s ({cold_rps:.1f} req/s)"
        f"\nwarm (cache)      : {warm_s:.2f}s ({warm_rps:.1f} req/s, "
        f"{hit_rate:.0%} hits, {cold_s / warm_s:.1f}x)"
    )

    # Identity: the service replays exactly what a local run replays.
    for (name, cluster), reply in zip(requests, cold):
        assert reply.event_digest == local[(name, cluster)], (name, cluster)
    for (name, cluster), reply in zip(requests, warm):
        assert reply.event_digest == local[(name, cluster)], (name, cluster)

    # Reuse: a warm request mix never re-simulates and outruns cold.
    assert hit_rate >= REQUIRED_WARM_HIT_RATE
    assert warm_s < cold_s
    assert 'simmr_requests_total{status="cached"}' in metrics_page
