"""Table I: symmetric KL divergence of phase-duration distributions.

Paper: KL values across five executions of the *same* application are
small (at most a few); across *different* applications they are an order
of magnitude larger (~7-13.5).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.distributions import run_table1_kl


def test_table1_kl_divergence(benchmark, once):
    result = once(benchmark, run_table1_kl, executions=5)
    print()
    print(result)
    same_avgs = [
        avg for phases in result.same_app.values() for (_, avg, _) in phases.values()
    ]
    cross_avgs = [avg for (_, avg, _) in result.cross_app.values()]
    # Same-application distributions are similar...
    assert float(np.mean(same_avgs)) < 2.0
    # ... and very different across applications (paper avg ~11.6-13.1).
    assert float(np.mean(cross_avgs)) > 8.0
    assert max(same_avgs) < min(cross_avgs)
