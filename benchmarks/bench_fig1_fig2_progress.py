"""Figures 1 & 2: WordCount task-progress timelines.

Paper: the 200-map/256-reduce WordCount shows 2 map and 2 reduce waves
with 128x128 slots (Figure 1) and 4 waves each with 64x64 (Figure 2);
the first reduce wave's shuffle overlaps the map stage and completes
only after the last map.
"""

from __future__ import annotations

from repro.experiments.progress import run_progress


def test_fig1_wordcount_128x128(benchmark, once):
    result = once(benchmark, run_progress, 128, 128)
    print()
    print(result)
    assert result.map_waves == 2
    assert result.reduce_waves == 2
    assert min(s for s, _ in result.shuffle_intervals) < result.map_stage_end
    assert min(e for _, e in result.shuffle_intervals) >= result.map_stage_end


def test_fig2_wordcount_64x64(benchmark, once):
    result = once(benchmark, run_progress, 64, 64)
    print()
    print(result)
    assert result.map_waves == 4
    assert result.reduce_waves == 4
