"""Sanitizer overhead: the disabled path must cost (essentially) nothing.

The engine's run loop has a dedicated unsanitized branch — with
``sanitize=False`` no per-event hook is even reachable, so disabling
simsan is free by construction.  This benchmark checks that claim
empirically with an A/A comparison (two measurements of the *same*
disabled configuration must agree within the asserted 2% — i.e. the
"overhead" of the disabled sanitizer is indistinguishable from
measurement noise) and reports what enabling the checks actually costs.

Artifacts: prints the off/on throughput table and writes
``BENCH_sanitizer.json`` at the repo root for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import ClusterConfig, SimulatorEngine
from repro.core.walltime import elapsed_since, perf_seconds
from repro.experiments.performance import make_performance_trace
from repro.sanitize import EventDigest, Sanitizer
from repro.schedulers import FIFOScheduler

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Generous bound for an A/A run-to-run comparison with best-of-N timing.
MAX_DISABLED_OVERHEAD = 0.02


def best_events_per_second(trace, rounds: int = 9, **engine_kwargs) -> float:
    """Best-of-N throughput for one engine configuration.

    Best-of (minimum time) rather than mean: scheduling jitter only ever
    adds time, so the minimum is the stablest estimator for an A/A test.
    """
    engine = SimulatorEngine(
        ClusterConfig(64, 64), FIFOScheduler(), record_tasks=False, **engine_kwargs
    )
    best = float("inf")
    events = 0
    for _ in range(rounds):
        start = perf_seconds()
        result = engine.run(trace)
        best = min(best, elapsed_since(start))
        events = result.events_processed
    return events / best


def test_sanitizer_overhead(benchmark, once):
    trace = make_performance_trace(300, mean_interarrival=100.0, seed=0)

    # Headline number, via the shared harness: the disabled path.
    once(benchmark, best_events_per_second, trace, sanitize=False)

    off_a = best_events_per_second(trace, sanitize=False)
    off_b = best_events_per_second(trace, sanitize=False)
    on = best_events_per_second(trace, sanitize=True)
    on_digest = best_events_per_second(
        trace,
        sanitizer=Sanitizer(fail_fast=False, digest=EventDigest(keep_events=False)),
    )

    disabled_overhead = abs(off_a / off_b - 1.0)
    enabled_cost = off_a / on
    report = {
        "events": SimulatorEngine(
            ClusterConfig(64, 64), FIFOScheduler(), record_tasks=False, sanitize=False
        ).run(trace).events_processed,
        "off_events_per_second": off_a,
        "off_repeat_events_per_second": off_b,
        "on_events_per_second": on,
        "on_with_digest_events_per_second": on_digest,
        "disabled_overhead": disabled_overhead,
        "enabled_slowdown_factor": enabled_cost,
    }
    (REPO_ROOT / "BENCH_sanitizer.json").write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\nsanitizer off : {off_a:,.0f} ev/s (repeat {off_b:,.0f}, "
        f"A/A delta {disabled_overhead:.2%})"
        f"\nsanitizer on  : {on:,.0f} ev/s ({enabled_cost:.2f}x slower)"
        f"\n  + digest    : {on_digest:,.0f} ev/s"
    )

    # Disabled sanitizer: within noise of itself — the off branch is the
    # pre-sanitizer hot loop verbatim, so any systematic gap is a bug.
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
    # The off path must preserve the paper's headline throughput floor.
    assert off_a > 200_000
    # Sanity: the enabled path still completes and is not catastrophic.
    assert on > 20_000
