"""Parallel sweep executor: speedup, cache hit rate, digest identity.

The tentpole claims of :mod:`repro.parallel`, measured:

* **identity** — serial (``workers=0``), parallel (``workers=4``) and
  cache-restored executions of the same grid produce byte-identical
  event streams (one ``event_digest`` comparison per cell);
* **reuse** — a warm re-run of the same sweep is served almost entirely
  from the content-addressed cache (>90% hit rate);
* **speedup** — fanning the grid over 4 workers beats the serial loop
  when the hardware has the cores.  The speedup assertion is gated on
  ``os.cpu_count()``: on a single-core container parallelism cannot
  help (the pool only adds IPC overhead), so the measured ratio is
  recorded honestly in the report instead of asserted.

Artifacts: prints the timing table and writes
``BENCH_parallel_sweep.json`` at the repo root for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core import ClusterConfig
from repro.core.walltime import elapsed_since, perf_seconds
from repro.experiments.performance import make_performance_trace
from repro.parallel import ResultCache
from repro.sweep import run_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEDULERS = ("fifo", "maxedf", "minedf", "fair")
CLUSTERS = (ClusterConfig(32, 32), ClusterConfig(64, 64), ClusterConfig(128, 128))
SLOWSTARTS = (0.05, 1.0)
PARALLEL_WORKERS = 4

#: Acceptance floor for the warm-cache hit rate.
MIN_WARM_HIT_RATE = 0.9
#: Acceptance floor for the 4-worker speedup — asserted only when the
#: host actually has that many cores.
MIN_SPEEDUP_AT_4_CORES = 2.0


def _timed_sweep(trace, **kwargs):
    start = perf_seconds()
    result = run_sweep(
        trace,
        schedulers=SCHEDULERS,
        clusters=CLUSTERS,
        slowstarts=SLOWSTARTS,
        **kwargs,
    )
    return result, elapsed_since(start)


def test_parallel_sweep(benchmark, once, tmp_path):
    trace = make_performance_trace(120, mean_interarrival=50.0, seed=0)
    cpus = os.cpu_count() or 1

    # Headline number, via the shared harness: the serial grid.
    once(benchmark, _timed_sweep, trace)

    serial, serial_s = _timed_sweep(trace)
    parallel, parallel_s = _timed_sweep(trace, workers=PARALLEL_WORKERS)

    cache_path = tmp_path / "results.sqlite"
    cold, cold_s = _timed_sweep(trace, workers=PARALLEL_WORKERS, cache=cache_path)
    warm, warm_s = _timed_sweep(trace, cache=cache_path)
    with ResultCache(cache_path) as cache:
        stored = len(cache)

    cells = len(serial.cells)
    digests = [c.event_digest for c in serial.cells]
    hit_rate = warm.cache_hits / cells
    speedup = serial_s / parallel_s

    report = {
        "cells": cells,
        "trace_jobs": len(trace),
        "cpu_count": cpus,
        "workers": PARALLEL_WORKERS,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "cold_cached_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_cache_hit_rate": hit_rate,
        "warm_speedup_vs_serial": serial_s / warm_s,
        "cached_results_stored": stored,
        "digests_identical_serial_parallel_warm": True,
    }
    (REPO_ROOT / "BENCH_parallel_sweep.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    print(
        f"\n{cells}-cell sweep over {len(trace)} jobs ({cpus} core(s)):"
        f"\nserial            : {serial_s:.2f}s"
        f"\n{PARALLEL_WORKERS} workers         : {parallel_s:.2f}s "
        f"({speedup:.2f}x)"
        f"\nwarm cache        : {warm_s:.2f}s "
        f"({serial_s / warm_s:.1f}x, {hit_rate:.0%} hits)"
    )

    # Identity: every execution path replays the same event stream.
    assert all(digests)
    for other in (parallel, cold, warm):
        assert [c.event_digest for c in other.cells] == digests

    # Reuse: the warm run is almost pure lookups, and every cacheable
    # cell made it to disk.
    assert hit_rate > MIN_WARM_HIT_RATE
    assert stored == cells

    # Speedup: only meaningful with the cores to back it; on fewer
    # cores the ratio is recorded in the report, not asserted.
    if cpus >= PARALLEL_WORKERS:
        assert speedup >= MIN_SPEEDUP_AT_4_CORES
    # The warm cache must beat re-simulating regardless of cores.
    assert warm_s < serial_s
