"""Parallel sweep executor: speedup, cache hit rate, digest identity.

The tentpole claims of :mod:`repro.parallel`, measured:

* **identity** — serial (``workers=0``), parallel (``workers=4``) and
  cache-restored executions of the same grid produce byte-identical
  event streams (one ``event_digest`` comparison per cell);
* **reuse** — a warm re-run of the same sweep is served almost entirely
  from the content-addressed cache (>90% hit rate);
* **speedup** — fanning the grid over 4 workers beats the serial loop
  when the hardware has the cores.  The speedup assertion is gated on
  ``os.cpu_count()``: on a single-core container parallelism cannot
  help (the pool only adds IPC overhead), so the measured ratio is
  recorded honestly in the report instead of asserted.

A second bench (``test_columnar_fanout``) measures the columnar trace
subsystem end to end: cold-parse time of the binary format vs JSON,
bytes shipped per worker under each fan-out transport (shared memory
must be O(1) in the worker count), and event-digest identity across
every execution path — serial, shared-memory, tempfile, legacy pickle,
and the HTTP service.

Artifacts: prints the timing tables and writes
``BENCH_parallel_sweep.json`` + ``BENCH_columnar.json`` at the repo
root for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core import ClusterConfig
from repro.core.walltime import elapsed_since, perf_seconds
from repro.experiments.performance import make_performance_trace
from repro.parallel import ResultCache
from repro.sweep import run_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEDULERS = ("fifo", "maxedf", "minedf", "fair")
CLUSTERS = (ClusterConfig(32, 32), ClusterConfig(64, 64), ClusterConfig(128, 128))
SLOWSTARTS = (0.05, 1.0)
PARALLEL_WORKERS = 4

#: Acceptance floor for the warm-cache hit rate.
MIN_WARM_HIT_RATE = 0.9
#: Acceptance floor for the 4-worker speedup — asserted only when the
#: host actually has that many cores.
MIN_SPEEDUP_AT_4_CORES = 2.0


def _timed_sweep(trace, **kwargs):
    start = perf_seconds()
    result = run_sweep(
        trace,
        schedulers=SCHEDULERS,
        clusters=CLUSTERS,
        slowstarts=SLOWSTARTS,
        **kwargs,
    )
    return result, elapsed_since(start)


def test_parallel_sweep(benchmark, once, tmp_path):
    trace = make_performance_trace(120, mean_interarrival=50.0, seed=0)
    cpus = os.cpu_count() or 1

    # Headline number, via the shared harness: the serial grid.
    once(benchmark, _timed_sweep, trace)

    serial, serial_s = _timed_sweep(trace)
    parallel, parallel_s = _timed_sweep(trace, workers=PARALLEL_WORKERS)

    cache_path = tmp_path / "results.sqlite"
    cold, cold_s = _timed_sweep(trace, workers=PARALLEL_WORKERS, cache=cache_path)
    warm, warm_s = _timed_sweep(trace, cache=cache_path)
    with ResultCache(cache_path) as cache:
        stored = len(cache)

    cells = len(serial.cells)
    digests = [c.event_digest for c in serial.cells]
    hit_rate = warm.cache_hits / cells
    speedup = serial_s / parallel_s

    report = {
        "cells": cells,
        "trace_jobs": len(trace),
        "cpu_count": cpus,
        "workers": PARALLEL_WORKERS,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "cold_cached_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_cache_hit_rate": hit_rate,
        "warm_speedup_vs_serial": serial_s / warm_s,
        "cached_results_stored": stored,
        "digests_identical_serial_parallel_warm": True,
    }
    (REPO_ROOT / "BENCH_parallel_sweep.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    print(
        f"\n{cells}-cell sweep over {len(trace)} jobs ({cpus} core(s)):"
        f"\nserial            : {serial_s:.2f}s"
        f"\n{PARALLEL_WORKERS} workers         : {parallel_s:.2f}s "
        f"({speedup:.2f}x)"
        f"\nwarm cache        : {warm_s:.2f}s "
        f"({serial_s / warm_s:.1f}x, {hit_rate:.0%} hits)"
    )

    # Identity: every execution path replays the same event stream.
    assert all(digests)
    for other in (parallel, cold, warm):
        assert [c.event_digest for c in other.cells] == digests

    # Reuse: the warm run is almost pure lookups, and every cacheable
    # cell made it to disk.
    assert hit_rate > MIN_WARM_HIT_RATE
    assert stored == cells

    # Speedup: only meaningful with the cores to back it; on fewer
    # cores the ratio is recorded in the report, not asserted.
    if cpus >= PARALLEL_WORKERS:
        assert speedup >= MIN_SPEEDUP_AT_4_CORES
    # The warm cache must beat re-simulating regardless of cores.
    assert warm_s < serial_s


# --------------------------------------------------------------------------- #
# columnar trace store + zero-copy fan-out
# --------------------------------------------------------------------------- #

def _timed(fn, *args, **kwargs):
    start = perf_seconds()
    result = fn(*args, **kwargs)
    return result, elapsed_since(start)


def test_columnar_fanout(benchmark, once, tmp_path):
    from repro.parallel.executor import (
        SchedulerSpec,
        SimTask,
        last_fanout_stats,
        simulate_many,
    )
    from repro.sanitize.digest import trace_digest
    from repro.service import ServiceClient, ServiceConfig, SimulationServer
    from repro.trace.binfmt import load_trace_bin, save_trace_bin
    from repro.trace.schema import load_trace, save_trace

    # The largest trace any bench builds: 500 jobs, ~57k durations.
    trace = make_performance_trace(500, mean_interarrival=100.0, seed=0)
    json_path = tmp_path / "perf.json"
    bin_path = tmp_path / "perf.simmr"
    save_trace(trace, json_path)
    bin_bytes = save_trace_bin(trace, bin_path)
    json_bytes = json_path.stat().st_size

    # Cold-parse comparison (best of 3 to shed filesystem noise).
    json_s = min(_timed(load_trace, json_path)[1] for _ in range(3))
    from_bin, _ = _timed(load_trace_bin, bin_path)
    bin_s = min(_timed(load_trace_bin, bin_path)[1] for _ in range(3))
    digest = trace_digest(trace)
    assert trace_digest(from_bin) == digest

    # Fan-out accounting: the same 4-task batch at 2 and 4 workers,
    # under each transport.  Headline number = the shared-memory batch.
    tasks = [
        SimTask(trace_id="t", scheduler=SchedulerSpec(name=name))
        for name in SCHEDULERS
    ]
    traces = {"t": trace}
    serial = simulate_many(traces, tasks, workers=0, cache=None)
    reference = [o.result.event_digest for o in serial]
    assert all(reference)

    once(
        benchmark, simulate_many, traces, tasks,
        workers=2, cache=None, transport="shared_memory",
    )

    shipping: dict[str, dict] = {}
    path_digests = {"serial": reference}
    for transport in ("shared_memory", "tempfile", "pickle"):
        per_workers = {}
        for workers in (2, 4):
            outcomes = simulate_many(
                traces, tasks, workers=workers, cache=None, transport=transport
            )
            path_digests[f"{transport}@{workers}"] = [
                o.result.event_digest for o in outcomes
            ]
            per_workers[workers] = last_fanout_stats().to_dict()
        shipping[transport] = per_workers

    # The service path: a served binary trace, replayed over HTTP.
    config = ServiceConfig(port=0, workers=1, trace_root=tmp_path, cache=False)
    with SimulationServer(config) as server:
        server.start()
        client = ServiceClient(server.url)
        reply, first_s = _timed(
            client.replay, trace_path="perf.simmr", scheduler="fifo"
        )
        _, second_s = _timed(
            client.replay, trace_path="perf.simmr", scheduler="fifo"
        )
        trace_cache = server.trace_cache.stats()
    path_digests["service"] = [reply.event_digest]

    shm2 = shipping["shared_memory"][2]
    shm4 = shipping["shared_memory"][4]
    pickle4 = shipping["pickle"][4]
    report = {
        "trace_jobs": len(trace),
        "trace_digest": digest,
        "json_bytes": json_bytes,
        "binary_bytes": bin_bytes,
        "binary_compression": json_bytes / bin_bytes,
        "json_parse_seconds": json_s,
        "binary_load_seconds": bin_s,
        "binary_parse_speedup": json_s / bin_s,
        "shipping": shipping,
        "service_first_request_seconds": first_s,
        "service_cached_trace_request_seconds": second_s,
        "service_trace_cache": {
            "hits": trace_cache.hits,
            "misses": trace_cache.misses,
        },
        "digests_identical_all_paths": True,
    }
    (REPO_ROOT / "BENCH_columnar.json").write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\ncolumnar store over {len(trace)} jobs:"
        f"\nJSON parse        : {json_s * 1e3:.1f}ms ({json_bytes:,} bytes)"
        f"\nbinary load       : {bin_s * 1e3:.1f}ms ({bin_bytes:,} bytes, "
        f"{json_s / bin_s:.0f}x faster)"
        f"\nshm per-worker    : {shm2['bytes_per_worker']} B at 2w, "
        f"{shm4['bytes_per_worker']} B at 4w "
        f"(payload {shm4['payload_bytes']:,} B once)"
        f"\npickle per-worker : {pickle4['bytes_per_worker']:,} B"
        f"\nservice trace LRU : {trace_cache.hits} hit(s), "
        f"{trace_cache.misses} miss(es)"
    )

    # Identity: every path replays the same event stream.
    for path, digests in path_digests.items():
        assert digests[0] == reference[0], path
        if len(digests) == len(reference):
            assert digests == reference, path

    # Binary load must beat the JSON parse outright.
    assert bin_s < json_s

    # O(1) shipping: the shared payload does not grow with the worker
    # count, and the per-worker descriptor stays far below the pickled
    # job lists the legacy transport sends to every worker.
    assert shm4["payload_bytes"] == shm2["payload_bytes"]
    assert shm4["bytes_per_worker"] == shm2["bytes_per_worker"]
    assert shm4["bytes_per_worker"] < pickle4["bytes_per_worker"] / 100
    assert shipping["tempfile"][4]["payload_bytes"] == shm4["payload_bytes"]

    # The service's second request was served from the parsed-trace LRU.
    assert trace_cache.misses == 1 and trace_cache.hits >= 1
