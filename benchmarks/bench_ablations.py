"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these isolate *why* SimMR's design decisions matter:
the shuffle model (the Mumak failure mode reproduced inside SimMR's own
engine), the reduce slow-start threshold, and the slot-allocation
sensitivity that motivates the whole simulator (paper Section II).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ablations import (
    run_allocation_sweep,
    run_shuffle_ablation,
    run_slowstart_ablation,
)


def test_ablation_shuffle_modeling(benchmark, once):
    result = once(benchmark, run_shuffle_ablation)
    print()
    print(result)
    rows = result.rows()
    with_sh = float(np.mean([r["with_shuffle_err_pct"] for r in rows]))
    without = float(np.mean([r["without_shuffle_err_pct"] for r in rows]))
    print(f"\nmean replay error: with shuffle {with_sh:.1f}%, without {without:.1f}%")
    assert with_sh < 5.0
    assert without > 10.0


def test_ablation_reduce_slowstart(benchmark, once):
    result = once(benchmark, run_slowstart_ablation)
    print()
    print(result)
    rows = result.rows()
    solos = [r["solo_duration_s"] for r in rows]
    # Solo, early reduce starts never hurt (fillers are free when idle).
    assert solos[0] <= solos[-1] + 1e-6
    # Under contention, hogging reduce slots with fillers has a cost:
    # the most aggressive slow-start is not the best contended choice.
    contended = [r["contended_makespan_s"] for r in rows]
    assert min(contended) <= contended[0]


def test_ablation_slot_allocation_sensitivity(benchmark, once):
    result = once(benchmark, run_allocation_sweep)
    print()
    print(result)
    assert result.monotone_nonincreasing()
    durations = {(m, r): d for m, r, d in result.samples}
    # Section II's motivation: halving the allocation visibly slows the job.
    assert durations[(32, 32)] > 1.3 * durations[(128, 128)]


def test_ablation_speculative_execution(benchmark, once):
    from repro.experiments.ablations import run_speculation_ablation

    result = once(benchmark, run_speculation_ablation)
    print()
    print(result)
    rows = {r["node_speed_sigma"]: r for r in result.rows()}
    # The paper's observation: at the testbed's mild heterogeneity,
    # speculation "did not lead to any significant improvements".
    assert abs(rows[0.05]["improvement_pct"]) < 2.0
    # Backup copies only appear once stragglers actually exist.
    assert rows[0.4]["backups"] > rows[0.05]["backups"]
