"""Benchmark-harness configuration.

Every benchmark regenerates one paper table or figure: it times the
experiment with pytest-benchmark (rounds=1 — these are experiments, not
micro-benchmarks) and prints the regenerated rows, asserting the shape
properties the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
