"""Figure 5: simulator accuracy across scheduling policies.

Paper: replaying three executions of the six applications, SimMR stays
within 2.7% average / 6.6% max error under FIFO (1.1%/2.7% MinEDF,
3.7%/8.6% MaxEDF) while Mumak — which skips the shuffle — underestimates
with 37% average (51.7% max) error.
"""

from __future__ import annotations

from repro.experiments.accuracy import run_accuracy


def test_fig5a_fifo_accuracy(benchmark, once):
    result = once(benchmark, run_accuracy, "FIFO", executions_per_app=3)
    print()
    print(result)
    avg, mx = result.simmr_errors()
    assert avg < 5.0
    assert mx < 10.0
    mumak_avg, mumak_max = result.mumak_errors()
    assert mumak_avg > 15.0          # tens of percent, like the paper's 37%
    assert mumak_avg > 4 * avg       # SimMR is far more accurate
    assert result.mumak_underestimates()


def test_fig5b_minedf_accuracy(benchmark, once):
    result = once(benchmark, run_accuracy, "MinEDF", executions_per_app=3)
    print()
    print(result)
    avg, mx = result.simmr_errors()
    assert avg < 5.0
    assert mx < 10.0


def test_fig5c_maxedf_accuracy(benchmark, once):
    result = once(benchmark, run_accuracy, "MaxEDF", executions_per_app=3)
    print()
    print(result)
    avg, mx = result.simmr_errors()
    assert avg < 5.0
    assert mx < 10.0
