"""Per-decision cost of compiled policy trees vs hand-written schedulers.

A compiled tree must be *usable*, not just correct: every scheduling
decision walks closures instead of a hand-inlined ``priority_key``, so
this benchmark times ``choose_next_map_task`` over a prepared job queue
and reports the per-decision ratio of each compiled example tree
against its hand-written twin — FIFO and MaxEDF for the static trees,
Fair for the dynamic deadline-aware tree (informational: they compute
different policies, the ratio just situates the cost).

Artifacts: prints the per-decision table and writes
``BENCH_policy.json`` at the repo root for EXPERIMENTS.md.  The
acceptance bound is the ISSUE's: a compiled static tree costs at most
2x its hand-written counterpart per decision.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.job import Job
from repro.core.walltime import elapsed_since, perf_seconds
from repro.policy import compile_policy, example_policy
from repro.schedulers import FIFOScheduler, FairScheduler
from repro.schedulers.edf import MaxEDFScheduler
from repro.trace.arrivals import ExponentialArrivals
from repro.trace.deadlines import DeadlineFactorPolicy
from repro.trace.synthetic import SyntheticTraceGen
from repro.workloads.apps import make_app_specs

REPO_ROOT = Path(__file__).resolve().parent.parent

QUEUE_DEPTH = 64
DECISIONS = 2_000
ROUNDS = 7

#: The ISSUE's acceptance bound for compiled static trees.
MAX_STATIC_OVERHEAD = 2.0


def make_queue(depth: int = QUEUE_DEPTH) -> list[Job]:
    from repro.core import ClusterConfig

    gen = SyntheticTraceGen(
        list(make_app_specs().values()),
        ExponentialArrivals(10.0),
        deadline_policy=DeadlineFactorPolicy(2.0, ClusterConfig(64, 64)),
        seed=11,
    )
    return [Job(i, tj) for i, tj in enumerate(gen.generate(depth))]


def per_decision_seconds(scheduler, queue, decisions: int = DECISIONS) -> float:
    """Best-of-N seconds per ``choose_next_map_task`` call.

    Best-of (minimum) rather than mean: scheduling jitter only ever adds
    time.  The queue is passed as-is — no jobs are admitted or removed,
    so every call does the same full-queue scan both sides of the ratio.
    """
    choose = scheduler.choose_next_map_task
    best = float("inf")
    for _ in range(ROUNDS):
        start = perf_seconds()
        for _ in range(decisions):
            choose(queue)
        best = min(best, elapsed_since(start))
    return best / decisions


def test_policy_eval_overhead(benchmark, once):
    queue = make_queue()

    pairs = {
        "fifo": (FIFOScheduler(), compile_policy(example_policy("fifo-tree"))),
        "edf": (MaxEDFScheduler(), compile_policy(example_policy("edf-tree"))),
    }
    dynamic_tree = compile_policy(example_policy("deadline-aware"))
    fair = FairScheduler()

    # Headline number through the shared harness: the compiled FIFO tree.
    once(benchmark, per_decision_seconds, pairs["fifo"][1], queue)

    report: dict = {
        "queue_depth": QUEUE_DEPTH,
        "decisions": DECISIONS,
        "pairs": {},
    }
    lines = []
    for name, (hand, tree) in pairs.items():
        # decisions must agree before their cost is comparable
        assert hand.choose_next_map_task(queue) is tree.choose_next_map_task(queue)
        hand_s = per_decision_seconds(hand, queue)
        tree_s = per_decision_seconds(tree, queue)
        ratio = tree_s / hand_s
        report["pairs"][name] = {
            "hand_written_us": hand_s * 1e6,
            "compiled_tree_us": tree_s * 1e6,
            "ratio": ratio,
        }
        lines.append(
            f"{name:14} hand {hand_s * 1e6:7.2f} us  "
            f"tree {tree_s * 1e6:7.2f} us  ratio {ratio:.2f}x"
        )

    fair_s = per_decision_seconds(fair, queue)
    dyn_s = per_decision_seconds(dynamic_tree, queue)
    report["dynamic"] = {
        "fair_us": fair_s * 1e6,
        "deadline_aware_tree_us": dyn_s * 1e6,
        "ratio": dyn_s / fair_s,
    }
    lines.append(
        f"{'dynamic (info)':14} fair {fair_s * 1e6:7.2f} us  "
        f"tree {dyn_s * 1e6:7.2f} us  ratio {dyn_s / fair_s:.2f}x"
    )

    (REPO_ROOT / "BENCH_policy.json").write_text(json.dumps(report, indent=2) + "\n")
    print("\n" + "\n".join(lines))

    for name, entry in report["pairs"].items():
        assert entry["ratio"] <= MAX_STATIC_OVERHEAD, (name, entry)
