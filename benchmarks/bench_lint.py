"""Incremental-analysis payoff: cold vs warm full-tree lint.

The analysis cache (``repro.analysis.cache``) claims a warm ``simmr
lint`` over an unchanged tree is a digest sweep plus a JSON replay —
no parsing, no call graph, no effect inference, no CFG dataflow.  This
benchmark measures the claim: one cold run populating a fresh cache,
one warm run against it, both over the real ``src/repro`` tree.

Results go to ``BENCH_lint.json`` at the repo root; the perf gate
(``scripts/perf_gate.py``) enforces the warm-run floor — the warm run
must be at least ``MIN_WARM_SPEEDUP``x faster — so a cache key that
silently stops matching (and quietly re-runs the full analysis every
time) fails CI instead of just wasting everyone's time.

Findings must be identical between the runs; a cache that changes the
answer is worse than no cache.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import AnalysisCache, lint_paths
from repro.core.walltime import elapsed_since, perf_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Asserted here AND enforced (against the written report) by
#: scripts/perf_gate.py.  The measured ratio is typically far higher
#: (>50x); 3x keeps slow CI runners out of the flake zone.
MIN_WARM_SPEEDUP = 3.0


def _cold_and_warm(tree: Path, cache_path: Path) -> dict:
    cold_cache = AnalysisCache.load(cache_path)
    start = perf_seconds()
    cold_findings = lint_paths([tree], root=REPO_ROOT, cache=cold_cache)
    cold_seconds = elapsed_since(start)

    warm_cache = AnalysisCache.load(cache_path)
    start = perf_seconds()
    warm_findings = lint_paths([tree], root=REPO_ROOT, cache=warm_cache)
    warm_seconds = elapsed_since(start)

    assert [f.to_dict() for f in warm_findings] == [
        f.to_dict() for f in cold_findings
    ], "warm (cached) findings differ from cold findings"
    return {
        "tree": str(tree.relative_to(REPO_ROOT)),
        "findings": len(cold_findings),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "asserted_min_speedup": MIN_WARM_SPEEDUP,
    }


def test_incremental_lint_speedup(benchmark, tmp_path):
    tree = REPO_ROOT / "src" / "repro"
    cache_path = tmp_path / ".analysis_cache.json"

    report = benchmark.pedantic(
        _cold_and_warm, args=(tree, cache_path), rounds=1, iterations=1
    )
    (REPO_ROOT / "BENCH_lint.json").write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nlint cold {report['cold_seconds']:.2f}s -> warm "
        f"{report['warm_seconds']:.3f}s ({report['speedup']:.0f}x) over "
        f"{report['findings']} finding(s)"
    )
    assert report["speedup"] >= MIN_WARM_SPEEDUP
