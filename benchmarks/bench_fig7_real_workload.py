"""Figure 7: MaxEDF vs MinEDF on the (emulated) testbed workload.

Paper: sweeping the mean inter-arrival time over 1..100000 s for
deadline factors 1 / 1.5 / 3 (400 runs averaged), the relative
deadline-exceeded metric decreases as load drops; the policies coincide
at df=1 and MinEDF wins increasingly as deadlines relax.
"""

from __future__ import annotations

import pytest

from repro.experiments.schedulers_real import run_deadline_comparison_real

RUNS = 30  # paper uses 400; 30 keeps the bench minutes-scale


def test_fig7_real_workload_deadline_sweep(benchmark, once):
    result = once(
        benchmark,
        run_deadline_comparison_real,
        (1.0, 1.5, 3.0),
        (1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0),
        runs=RUNS,
    )
    print()
    print(result)

    # (a) df=1: the policies (nearly) coincide.
    for (_, ia), cell in ((k, v) for k, v in result.cells.items() if k[0] == 1.0):
        assert cell["MinEDF"] == pytest.approx(cell["MaxEDF"], rel=0.4, abs=2.0)

    # (b,c) relaxed deadlines: MinEDF at least matches MaxEDF everywhere
    # and wins clearly in aggregate, with the gap growing in df.
    gaps = {}
    for df in (1.5, 3.0):
        assert result.minedf_wins(df, tolerance=1.0)
        series_max = dict(result.series(df, "MaxEDF"))
        series_min = dict(result.series(df, "MinEDF"))
        total_max = sum(series_max.values())
        total_min = sum(series_min.values())
        assert total_min < total_max
        gaps[df] = (total_max - total_min) / max(total_max, 1e-9)
    assert gaps[3.0] > gaps[1.5] * 0.8  # relative gap does not shrink

    # Load shape: the metric decreases from saturation to idle arrivals.
    for df in (1.0, 1.5, 3.0):
        series = result.series(df, "MinEDF")
        assert series[0][1] > series[-1][1]
