"""Delay-scheduling locality bench (the paper's reference [3], reproduced
on the emulator substrate).

Asserted shape, from Zaharia et al.: node-locality of a many-small-jobs
workload climbs steeply with the delay-scheduling wait — from well under
half when greedy to near-total within a few seconds — without hurting
job performance.
"""

from __future__ import annotations

from repro.experiments.locality import run_locality_sweep


def test_delay_scheduling_locality_sweep(benchmark, once):
    result = once(benchmark, run_locality_sweep)
    print()
    print(result)
    series = dict(result.node_locality_series())
    assert series[0.0] < 0.6              # greedy assignment: poor locality
    assert series[10.0] > 0.9             # patient assignment: near-total
    assert series[10.0] > series[0.0] + 0.3
    # Patience is (almost) free: mean duration does not degrade.
    rows = {r["locality_wait_s"]: r for r in result.rows()}
    assert rows[10.0]["mean_duration_s"] <= 1.1 * rows[0.0]["mean_duration_s"]
