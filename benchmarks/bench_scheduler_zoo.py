"""Scheduler zoo bench: every built-in policy on one shared workload.

Not a paper figure — the cross-policy comparison SimMR exists to make
cheap.  Asserted shape: deadline-aware policies (EDF family, Flex) beat
deadline-blind FIFO/Fair on the paper's utility metric, and FIFO remains
competitive on pure makespan (it never idles slots on caps).
"""

from __future__ import annotations

from repro.experiments.scheduler_zoo import run_scheduler_zoo


def test_scheduler_zoo(benchmark, once):
    result = once(benchmark, run_scheduler_zoo, runs=10)
    print()
    print(result)
    metrics = result.metrics
    deadline_aware = ["MaxEDF", "MinEDF", "Flex(avg_response)"]
    for name in deadline_aware:
        assert metrics[name]["utility"] < metrics["FIFO"]["utility"]
        assert metrics[name]["utility"] < metrics["Fair"]["utility"]
    # FIFO's greedy packing keeps makespan near the best observed.
    best_makespan = min(m["makespan"] for m in metrics.values())
    assert metrics["FIFO"]["makespan"] <= 1.15 * best_makespan
