"""Headline throughput: "SimMR can process over one million events per
second" (paper Sections I and IV-E).

Measures raw engine event throughput on a large saturated trace with
task recording disabled (the configuration a capacity-planning sweep
would use).  The headline number is the **columnar kernel**
(``engine="columnar"``, see ``docs/engine-internals.md``); the classic
object-per-event loop is timed alongside it so the report carries the
kernel's speedup.  With the kernel, the pure-Python engine clears the
paper's one-million-events-per-second claim — the asserted floor.

The measured numbers are printed for EXPERIMENTS.md and written to
``BENCH_engine_throughput.json`` at the repo root, which doubles as the
input to ``scripts/perf_gate.py`` (fresh run vs committed baseline;
the gate also cross-checks ``trace_jobs``/``events_processed`` so a
workload change cannot masquerade as a throughput change).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import ClusterConfig, ColumnarEngine, SimulatorEngine
from repro.experiments.performance import make_performance_trace
from repro.schedulers import FIFOScheduler

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Hard floor asserted here — the paper's headline claim.  The
#: regression gate compares against the committed baseline instead,
#: with its own tolerance.
MIN_EVENTS_PER_SECOND = 1_000_000

#: The object-per-event loop must not silently rot either: the kernel
#: headline is only meaningful while the fallback stays comparable.
MIN_SPEEDUP = 3.0


def _time_object_engine(trace, rounds: int = 3) -> float:
    """Best-of-N events/s for the object-per-event loop."""
    best = None
    for _ in range(rounds):
        engine = SimulatorEngine(
            ClusterConfig(64, 64), FIFOScheduler(), record_tasks=False
        )
        start = time.perf_counter()
        result = engine.run(trace)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return result.events_processed / best


def test_engine_event_throughput(benchmark):
    trace = make_performance_trace(500, mean_interarrival=100.0, seed=0)
    engine = ColumnarEngine(ClusterConfig(64, 64), FIFOScheduler(), record_tasks=False)

    result = benchmark.pedantic(engine.run, args=(trace,), rounds=3, iterations=1)
    assert engine.last_path == "kernel", engine.fallback_reason
    eps = result.events_per_second
    object_eps = _time_object_engine(trace)
    speedup = eps / object_eps
    report = {
        "trace_jobs": len(trace),
        "events_processed": result.events_processed,
        "events_per_second": eps,
        "engine": "columnar",
        "object_events_per_second": object_eps,
        "speedup": speedup,
        "asserted_floor": MIN_EVENTS_PER_SECOND,
    }
    (REPO_ROOT / "BENCH_engine_throughput.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    print(
        f"\nengine throughput: {eps:,.0f} events/s over "
        f"{result.events_processed} events "
        f"(object loop {object_eps:,.0f} events/s, {speedup:.1f}x)"
    )
    assert eps > MIN_EVENTS_PER_SECOND
    assert speedup > MIN_SPEEDUP
