"""Headline throughput: "SimMR can process over one million events per
second" (paper Sections I and IV-E).

Measures raw engine event throughput on a large saturated trace with
task recording disabled (the configuration a capacity-planning sweep
would use).  The asserted floor is conservative for a pure-Python
engine; the measured number is printed for EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core import ClusterConfig, SimulatorEngine
from repro.experiments.performance import make_performance_trace
from repro.schedulers import FIFOScheduler


def test_engine_event_throughput(benchmark):
    trace = make_performance_trace(500, mean_interarrival=100.0, seed=0)
    engine = SimulatorEngine(ClusterConfig(64, 64), FIFOScheduler(), record_tasks=False)

    result = benchmark.pedantic(engine.run, args=(trace,), rounds=3, iterations=1)
    eps = result.events_per_second
    print(f"\nengine throughput: {eps:,.0f} events/s over {result.events_processed} events")
    assert eps > 200_000
