"""Headline throughput: "SimMR can process over one million events per
second" (paper Sections I and IV-E).

Measures raw engine event throughput on a large saturated trace with
task recording disabled (the configuration a capacity-planning sweep
would use).  The asserted floor is conservative for a pure-Python
engine; the measured number is printed for EXPERIMENTS.md and written
to ``BENCH_engine_throughput.json`` at the repo root, which doubles as
the input to ``scripts/perf_gate.py`` (fresh run vs committed
baseline).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import ClusterConfig, SimulatorEngine
from repro.experiments.performance import make_performance_trace
from repro.schedulers import FIFOScheduler

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Hard floor asserted here; the regression gate compares against the
#: committed baseline instead, with its own tolerance.
MIN_EVENTS_PER_SECOND = 200_000


def test_engine_event_throughput(benchmark):
    trace = make_performance_trace(500, mean_interarrival=100.0, seed=0)
    engine = SimulatorEngine(ClusterConfig(64, 64), FIFOScheduler(), record_tasks=False)

    result = benchmark.pedantic(engine.run, args=(trace,), rounds=3, iterations=1)
    eps = result.events_per_second
    report = {
        "trace_jobs": len(trace),
        "events_processed": result.events_processed,
        "events_per_second": eps,
        "asserted_floor": MIN_EVENTS_PER_SECOND,
    }
    (REPO_ROOT / "BENCH_engine_throughput.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    print(f"\nengine throughput: {eps:,.0f} events/s over {result.events_processed} events")
    assert eps > MIN_EVENTS_PER_SECOND
