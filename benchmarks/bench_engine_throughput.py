"""Headline throughput: "SimMR can process over one million events per
second" (paper Sections I and IV-E).

Measures raw engine event throughput on a large saturated trace with
task recording disabled (the configuration a capacity-planning sweep
would use).  The headline number is the **columnar kernel**
(``engine="columnar"``, see ``docs/engine-internals.md``); the classic
object-per-event loop is timed alongside it so the report carries the
kernel's speedup.  With the kernel, the pure-Python engine clears the
paper's one-million-events-per-second claim — the asserted floor.

Beyond the static headline, the report carries one row per kernel
*path* so the widened envelope is covered end to end:

* ``static_fifo`` — the vectorized multi-pass mode (the headline).
* ``fair`` — Fair via the columnar-scheduler contract in
  segmented-replay mode.
* ``preemptive_fair`` — Fair with HFS-style preemption: live kills on
  the replay path.
* ``preemptive_edf`` — MaxEDF+P on a deadline-decorated trace.  This
  row's floor is deliberately below 3x: replay must pop a heap per
  event, and bare ``heappush``+``heappop`` of the event tuples alone
  runs at ~1.1M events/s on the reference box — less than 3x the
  object loop's throughput on this workload — so a 3x ratio is
  unreachable *by construction* for any per-event replay.  The Fair
  rows clear 3x because the object loop's dynamic dispatch is far more
  expensive there.  See docs/performance.md.

The measured numbers are printed for EXPERIMENTS.md and written to
``BENCH_engine_throughput.json`` at the repo root, which doubles as the
input to ``scripts/perf_gate.py`` (fresh run vs committed baseline; the
gate also cross-checks ``trace_jobs``/``events_processed`` so a
workload change cannot masquerade as a throughput change, and fails any
path whose run regressed from the kernel to the object fallback).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import ClusterConfig, ColumnarEngine, SimulatorEngine, TraceJob
from repro.experiments.performance import make_performance_trace
from repro.schedulers import FairScheduler, FIFOScheduler, MaxEDFScheduler

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_engine_throughput.json"

#: Hard floor asserted here — the paper's headline claim.  The
#: regression gate compares against the committed baseline instead,
#: with its own tolerance.
MIN_EVENTS_PER_SECOND = 1_000_000

#: The object-per-event loop must not silently rot either: the kernel
#: headline is only meaningful while the fallback stays comparable.
MIN_SPEEDUP = 3.0

#: Per-path kernel-vs-object floors enforced here and by the gate.
#: ``preemptive_edf`` is heap-bound (module docstring): its floor says
#: "the replay must beat the object loop", not a softened 3x.
PATH_FLOORS = {
    "static_fifo": 3.0,
    "fair": 3.0,
    "preemptive_fair": 3.0,
    "preemptive_edf": 1.1,
}

CLUSTER = ClusterConfig(64, 64)
#: The dynamic/preemptive rows use a denser, smaller trace than the
#: headline: 150 jobs at 5s mean inter-arrival keeps the object-loop
#: timing under ~8s while the heavy contention (long job queues, so the
#: object loop's per-dispatch pool table is expensive) keeps the
#: kernel-vs-object ratio well clear of the floor and keeps pools
#: starved enough for Fair+P to preempt hundreds of tasks.
DYNAMIC_JOBS = 150
DYNAMIC_INTERARRIVAL = 5.0


def _merge_report(update: dict) -> dict:
    """Read-modify-write the bench JSON so each test adds its rows."""
    report: dict = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text())
    paths = {**report.get("paths", {}), **update.pop("paths", {})}
    report.update(update)
    if paths:
        report["paths"] = paths
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _deadline_trace(n: int, mean_interarrival: float, seed: int) -> list[TraceJob]:
    """Performance trace with a 50/50 tight/loose deadline decoration."""
    rng = np.random.default_rng(seed)
    trace = []
    for tj in make_performance_trace(n, mean_interarrival=mean_interarrival, seed=seed):
        slack = rng.uniform(30, 120) if rng.random() < 0.5 else rng.uniform(500, 3000)
        trace.append(TraceJob(tj.profile, tj.submit_time, deadline=tj.submit_time + slack))
    return trace


def _time_engine(engine_factory, trace, rounds: int):
    """Best-of-N (result, events/s) for a freshly built engine per round."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        engine = engine_factory()
        start = time.perf_counter()
        result = engine.run(trace)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return result, engine, result.events_processed / best


def _bench_path(
    name: str,
    trace,
    make_scheduler,
    *,
    preemption: bool = False,
    expect_mode: str,
    kernel_rounds: int = 2,
    object_rounds: int = 1,
) -> dict:
    """Time one kernel path against the object loop on the same workload."""
    record = preemption  # task records are how kills are counted
    resk, engine, kernel_eps = _time_engine(
        lambda: ColumnarEngine(
            CLUSTER, make_scheduler(), preemption=preemption, record_tasks=record
        ),
        trace,
        kernel_rounds,
    )
    assert engine.last_path == "kernel", engine.fallback_reason
    assert engine.last_kernel_mode == expect_mode
    reso, _, object_eps = _time_engine(
        lambda: SimulatorEngine(
            CLUSTER, make_scheduler(), preemption=preemption, record_tasks=record
        ),
        trace,
        object_rounds,
    )
    assert reso.events_processed == resk.events_processed
    row = {
        "scheduler": make_scheduler().name,
        "trace_jobs": len(trace),
        "events_processed": resk.events_processed,
        "events_per_second": kernel_eps,
        "object_events_per_second": object_eps,
        "speedup": kernel_eps / object_eps,
        "engine_path": "kernel",
        "kernel_mode": expect_mode,
        "floor_speedup": PATH_FLOORS[name],
    }
    if preemption:
        row["tasks_killed"] = sum(1 for r in resk.task_records if r.killed)
    return row


def test_engine_event_throughput(benchmark):
    trace = make_performance_trace(500, mean_interarrival=100.0, seed=0)
    engine = ColumnarEngine(CLUSTER, FIFOScheduler(), record_tasks=False)

    result = benchmark.pedantic(engine.run, args=(trace,), rounds=3, iterations=1)
    assert engine.last_path == "kernel", engine.fallback_reason
    assert engine.last_kernel_mode == "passes"
    eps = result.events_per_second
    _, _, object_eps = _time_engine(
        lambda: SimulatorEngine(CLUSTER, FIFOScheduler(), record_tasks=False),
        trace,
        rounds=3,
    )
    speedup = eps / object_eps
    _merge_report(
        {
            "trace_jobs": len(trace),
            "events_processed": result.events_processed,
            "events_per_second": eps,
            "engine": "columnar",
            "object_events_per_second": object_eps,
            "speedup": speedup,
            "asserted_floor": MIN_EVENTS_PER_SECOND,
            "paths": {
                "static_fifo": {
                    "scheduler": "FIFO",
                    "trace_jobs": len(trace),
                    "events_processed": result.events_processed,
                    "events_per_second": eps,
                    "object_events_per_second": object_eps,
                    "speedup": speedup,
                    "engine_path": "kernel",
                    "kernel_mode": "passes",
                    "floor_speedup": PATH_FLOORS["static_fifo"],
                }
            },
        }
    )
    print(
        f"\nengine throughput: {eps:,.0f} events/s over "
        f"{result.events_processed} events "
        f"(object loop {object_eps:,.0f} events/s, {speedup:.1f}x)"
    )
    assert eps > MIN_EVENTS_PER_SECOND
    assert speedup > MIN_SPEEDUP


def test_widened_envelope_paths():
    """Fair / Fair+P / MaxEDF+P rows: replay-mode kernel vs object loop."""
    dense = make_performance_trace(
        DYNAMIC_JOBS, mean_interarrival=DYNAMIC_INTERARRIVAL, seed=0
    )
    deadlined = _deadline_trace(DYNAMIC_JOBS, DYNAMIC_INTERARRIVAL, seed=0)

    rows = {
        "fair": _bench_path("fair", dense, FairScheduler, expect_mode="replay"),
        "preemptive_fair": _bench_path(
            "preemptive_fair",
            dense,
            lambda: FairScheduler(preemptive=True),
            preemption=True,
            expect_mode="replay",
        ),
        "preemptive_edf": _bench_path(
            "preemptive_edf",
            deadlined,
            lambda: MaxEDFScheduler(preemptive=True),
            preemption=True,
            expect_mode="replay",
            kernel_rounds=3,
            object_rounds=3,
        ),
    }
    _merge_report({"paths": rows})

    print()
    for name, row in rows.items():
        kills = f", {row['tasks_killed']} kills" if "tasks_killed" in row else ""
        print(
            f"{name:16s}: {row['events_per_second']:>10,.0f} events/s over "
            f"{row['events_processed']} events (object "
            f"{row['object_events_per_second']:,.0f} events/s, "
            f"{row['speedup']:.1f}x{kills})"
        )
    # The preemptive rows must actually preempt, or they measure nothing.
    assert rows["preemptive_fair"]["tasks_killed"] > 0
    assert rows["preemptive_edf"]["tasks_killed"] > 0
    for name, row in rows.items():
        assert row["speedup"] > PATH_FLOORS[name], (name, row["speedup"])
