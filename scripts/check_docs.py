#!/usr/bin/env python3
"""Documentation checks: intra-repo markdown links + docs footer.

Two gates, both stdlib-only so they run anywhere:

1. **Relative links resolve.**  Every markdown file in the repo is
   scanned for ``[text](target)`` links; relative targets (optionally
   with an ``#anchor``) must exist on disk relative to the linking
   file.  External links (``http(s)://``, ``mailto:``) and pure
   in-page anchors are not checked — CI must not depend on the network.
2. **The docs footer.**  Every ``docs/*.md`` page ends with the shared
   *See also* cross-link footer, so no guide becomes an orphan.

Exit status: 0 when clean, 1 with one ``file:line: message`` per
problem otherwise.  Run from anywhere::

    python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories never scanned for markdown.
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules", ".venv"}

#: ``[text](target)`` — target captured up to the closing paren.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

FOOTER_MARK = "*See also:"


def markdown_files() -> list[Path]:
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            files.append(path)
    return files


def check_links(path: Path) -> list[str]:
    problems = []
    in_code_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
        if in_code_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                    f"broken link {target!r}"
                )
    return problems


def check_footer(path: Path) -> list[str]:
    if FOOTER_MARK not in path.read_text():
        return [
            f"{path.relative_to(REPO_ROOT)}:1: missing the shared "
            f"'{FOOTER_MARK} ...' cross-link footer"
        ]
    return []


def main() -> int:
    problems: list[str] = []
    for path in markdown_files():
        problems.extend(check_links(path))
    for path in sorted((REPO_ROOT / "docs").glob("*.md")):
        problems.extend(check_footer(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {len(markdown_files())} markdown files checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
