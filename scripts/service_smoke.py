#!/usr/bin/env python
"""End-to-end smoke test of the real `simmr serve` process.

Unlike tests/test_service.py (in-process server objects), this drives
the shipped entrypoint exactly the way an operator would:

1. launch ``python -m repro serve --port 0`` as a subprocess;
2. discover the ephemeral port from the stable "listening on" line;
3. submit one replay over HTTP and assert its ``event_digest`` equals
   a local :func:`simulate_many` replay of the same request;
4. send SIGTERM and assert the graceful drain: exit code 0 and the
   "drained" farewell on stdout.

Exits non-zero on any failure.  Run: ``python scripts/service_smoke.py``
(CI's service-smoke job does).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import ClusterConfig  # noqa: E402
from repro.parallel import SchedulerSpec, SimTask, simulate_many  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.trace.arrivals import ExponentialArrivals  # noqa: E402
from repro.trace.synthetic import SyntheticTraceGen  # noqa: E402
from repro.workloads.apps import make_app_specs  # noqa: E402

LISTENING = re.compile(r"simmr service listening on (http://[\w.]+:\d+)")
STARTUP_LINES = 50  # give up if the banner has not appeared by then


def wait_for_url(proc: subprocess.Popen) -> str:
    assert proc.stdout is not None
    for _ in range(STARTUP_LINES):
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"[serve] {line}")
        match = LISTENING.search(line)
        if match:
            return match.group(1)
    raise AssertionError("server never printed its listening line")


def main() -> int:
    gen = SyntheticTraceGen(
        list(make_app_specs().values()), ExponentialArrivals(60.0), seed=5
    )
    trace = gen.generate(6)
    cluster = ClusterConfig(map_slots=32, reduce_slots=32)

    [local] = simulate_many(
        {"t": trace},
        [SimTask(trace_id="t", cluster=cluster,
                 scheduler=SchedulerSpec(kind="registry", name="maxedf"))],
        cache=None,
    )
    print(f"local digest: {local.result.event_digest}")

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--cache-path", str(Path(tmp) / "smoke.sqlite")],
            cwd=REPO_ROOT, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            url = wait_for_url(proc)
            reply = ServiceClient(url, timeout=120.0).replay(
                trace, scheduler="maxedf", cluster=cluster
            )
            print(f"served digest: {reply.event_digest} "
                  f"(cached={reply.cached}, {reply.request_id})")
            assert reply.event_digest == local.result.event_digest, \
                "service digest diverges from local replay"

            proc.send_signal(signal.SIGTERM)
            remaining, _ = proc.communicate(timeout=30)
            sys.stdout.write("".join(f"[serve] {l}\n" for l in
                                     remaining.splitlines() if l))
            assert proc.returncode == 0, f"exit code {proc.returncode}"
            assert "drained" in remaining, "no graceful-drain farewell"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    print("service smoke OK: digest verified, SIGTERM drained cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
