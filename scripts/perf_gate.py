#!/usr/bin/env python3
"""Throughput regression gate: fresh bench vs committed baseline.

Runs ``benchmarks/bench_engine_throughput.py`` (which rewrites
``BENCH_engine_throughput.json`` at the repo root) and compares the
fresh ``events_per_second`` against the committed baseline in
``scripts/perf_baseline.json``.  Also runs ``benchmarks/bench_lint.py``
(writing ``BENCH_lint.json``) and enforces the incremental-analysis
warm-run floor: a warm cached lint must be at least ``--lint-floor``
times faster than the cold run, or the analysis cache has silently
stopped matching.

The tolerance is deliberately generous (default: fresh may be as low
as 50% of baseline) because CI runners and dev containers differ
wildly in single-core speed; the gate exists to catch order-of-
magnitude regressions — an accidentally quadratic event loop, a debug
hook left enabled — not 10% jitter.  Since the columnar kernel landed,
the baseline reflects the vectorized path (~7x the object loop) and
the gate runs as a **blocking** CI job: a kernel silently falling back
to the object engine shows up as a >2x regression, well past any
machine jitter the tolerance absorbs.

Throughput ratios are only meaningful when both runs simulated the
same workload, so the gate first cross-checks ``trace_jobs`` and
``events_processed`` against the baseline and **fails** on any drift —
a changed bench trace needs an explicit ``--update``, not a silent
events/s comparison between different workloads.

Beyond the static headline, the report's per-path rows (``paths`` in
the bench JSON: static multi-pass, Fair replay, preemptive Fair
replay, preemptive EDF replay) are each held to their own
machine-independent kernel-vs-object speedup floor (the row's
``floor_speedup``, set by the bench), and any path whose baseline ran
on the kernel must still run on the kernel — a cell silently
regressing to the object-loop fallback fails the gate even when its
absolute numbers look plausible.

Usage:
    python scripts/perf_gate.py            # run bench, compare, report
    python scripts/perf_gate.py --update   # run bench, rewrite baseline
    python scripts/perf_gate.py --no-run   # compare existing JSON only

Exit codes: 0 pass / baseline updated, 1 regression past tolerance,
2 operational error (bench failed, missing files, bad JSON).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "scripts" / "perf_baseline.json"
FRESH_PATH = REPO_ROOT / "BENCH_engine_throughput.json"
LINT_PATH = REPO_ROOT / "BENCH_lint.json"
BENCH = "benchmarks/bench_engine_throughput.py"
LINT_BENCH = "benchmarks/bench_lint.py"

#: Fresh throughput below ``tolerance * baseline`` fails the gate.
DEFAULT_TOLERANCE = 0.5

#: Warm cached lint must beat the cold run by at least this factor.
DEFAULT_LINT_FLOOR = 3.0


def run_bench(bench: str = BENCH) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # No --benchmark-only: the throughput bench's per-path rows come
    # from a plain test that never touches the benchmark fixture.
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", bench, "-q"],
        cwd=REPO_ROOT,
        env=env,
    )
    return proc.returncode


def load_report(path: Path) -> dict:
    doc = json.loads(path.read_text())
    if not isinstance(doc.get("events_per_second"), (int, float)):
        raise ValueError(f"{path}: missing numeric 'events_per_second'")
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baseline from a fresh run",
    )
    parser.add_argument(
        "--no-run",
        action="store_true",
        help="skip the bench; compare the existing BENCH_engine_throughput.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="minimum fresh/baseline throughput ratio (default %(default)s)",
    )
    parser.add_argument(
        "--lint-floor",
        type=float,
        default=DEFAULT_LINT_FLOOR,
        help="minimum warm/cold lint speedup (default %(default)s)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.tolerance <= 1:
        parser.error("--tolerance must be in (0, 1]")
    if args.lint_floor < 1:
        parser.error("--lint-floor must be >= 1")

    if not args.no_run:
        for bench in (BENCH, LINT_BENCH):
            rc = run_bench(bench)
            if rc != 0:
                print(f"perf gate: benchmark {bench} failed (exit {rc})",
                      file=sys.stderr)
                return 2

    try:
        fresh = load_report(FRESH_PATH)
    except (OSError, ValueError) as exc:
        print(f"perf gate: cannot read fresh report: {exc}", file=sys.stderr)
        return 2
    fresh_eps = float(fresh["events_per_second"])

    if args.update:
        BASELINE_PATH.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"perf gate: baseline updated ({fresh_eps:,.0f} events/s)")
        return 0

    try:
        baseline = load_report(BASELINE_PATH)
    except (OSError, ValueError) as exc:
        print(
            f"perf gate: cannot read baseline ({exc});"
            " run with --update to create it",
            file=sys.stderr,
        )
        return 2
    base_eps = float(baseline["events_per_second"])

    failed = False
    # Workload identity: events/s from different workloads are not
    # comparable, so drift in what was simulated fails the gate outright.
    for key in ("trace_jobs", "events_processed"):
        fresh_val = fresh.get(key)
        base_val = baseline.get(key)
        if fresh_val != base_val:
            print(
                f"perf gate: FAIL — workload drift: fresh {key}={fresh_val}"
                f" vs baseline {key}={base_val}; the bench simulated a"
                " different workload than the baseline (rerun with --update"
                " if the bench trace changed intentionally)",
                file=sys.stderr,
            )
            failed = True

    ratio = fresh_eps / base_eps if base_eps else float("inf")
    print(
        f"perf gate: fresh {fresh_eps:,.0f} events/s"
        f" vs baseline {base_eps:,.0f} events/s"
        f" (ratio {ratio:.2f}, floor {args.tolerance:.2f})"
    )
    if ratio < args.tolerance:
        print(
            "perf gate: FAIL — throughput regressed past the tolerance;"
            " if the machine is simply slower, rerun with --update on"
            " representative hardware",
            file=sys.stderr,
        )
        failed = True

    # Per-path rows: each kernel path's speedup over the object loop is
    # a same-box ratio (machine-independent), so the floor is absolute;
    # the engine_path check catches silent kernel -> fallback rot.
    base_paths = baseline.get("paths", {})
    fresh_paths = fresh.get("paths", {})
    if not base_paths:
        print(
            "perf gate: note — baseline has no per-path rows; rerun with"
            " --update to adopt the multi-path report",
        )
    for name in sorted(base_paths):
        base_row = base_paths[name]
        row = fresh_paths.get(name)
        if row is None:
            print(
                f"perf gate: FAIL — path {name!r} present in baseline but"
                " missing from the fresh report",
                file=sys.stderr,
            )
            failed = True
            continue
        if base_row.get("engine_path") == "kernel" and row.get("engine_path") != "kernel":
            print(
                f"perf gate: FAIL — path {name!r} regressed from the kernel"
                f" to {row.get('engine_path')!r}: the columnar envelope"
                " shrank (see ColumnarEngine.fallback_reason)",
                file=sys.stderr,
            )
            failed = True
        for key in ("trace_jobs", "events_processed"):
            if row.get(key) != base_row.get(key):
                print(
                    f"perf gate: FAIL — path {name!r} workload drift:"
                    f" fresh {key}={row.get(key)} vs baseline"
                    f" {key}={base_row.get(key)} (rerun with --update if"
                    " the bench workload changed intentionally)",
                    file=sys.stderr,
                )
                failed = True
        floor = float(base_row.get("floor_speedup", 1.0))
        speedup = float(row.get("speedup", 0.0))
        print(
            f"perf gate: path {name}: {speedup:.2f}x kernel-vs-object"
            f" (floor {floor:.1f}x, {row.get('events_per_second', 0):,.0f}"
            " events/s)"
        )
        if speedup < floor:
            print(
                f"perf gate: FAIL — path {name!r} kernel-vs-object speedup"
                f" {speedup:.2f}x fell below its floor {floor:.1f}x",
                file=sys.stderr,
            )
            failed = True

    # Warm-lint floor: a machine-speed-independent ratio, so no
    # committed baseline — the floor is absolute.
    try:
        lint = json.loads(LINT_PATH.read_text())
        speedup = float(lint["speedup"])
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"perf gate: cannot read lint report: {exc}", file=sys.stderr)
        return 2
    print(
        f"perf gate: warm lint {lint.get('warm_seconds', 0):.3f}s vs cold"
        f" {lint.get('cold_seconds', 0):.2f}s"
        f" (speedup {speedup:.1f}x, floor {args.lint_floor:.1f}x)"
    )
    if speedup < args.lint_floor:
        print(
            "perf gate: FAIL — warm incremental lint is not meaningfully"
            " faster than cold; the analysis cache is not being hit",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
