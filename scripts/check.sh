#!/usr/bin/env bash
# One-shot static gate: simlint + docs + trace pack/unpack smoke +
# ruff + mypy.
#
# simlint and the docs checker always run (both ship with the repo).
# ruff and mypy run when installed and are skipped with a notice
# otherwise, so the gate works in minimal containers; install the
# [dev] extra to get them.
#
# Usage: scripts/check.sh   (or: make lint)
set -u
cd "$(dirname "$0")/.."
fail=0

echo "== simlint (python -m repro lint src/repro --baseline scripts/lint_baseline.json) =="
# The baseline is the accepted-debt ledger: only findings absent from it
# fail the gate, and so do stale entries it still lists (baseline drift).
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro lint src/repro \
    --baseline scripts/lint_baseline.json || fail=1

echo
if [ -d docs ]; then
    echo "== docs (scripts/check_docs.py) =="
    python scripts/check_docs.py || fail=1
else
    echo "== docs: docs/ missing, skipping =="
fi

echo
echo "== trace pack/unpack smoke (simmr trace pack | unpack) =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - "$smoke_dir" <<'PY' || fail=1
import subprocess, sys
from pathlib import Path

sys.path.insert(0, "src")
from repro.experiments.performance import make_performance_trace
from repro.sanitize.digest import trace_digest
from repro.trace.schema import load_trace, save_trace

out = Path(sys.argv[1])
trace = make_performance_trace(20, mean_interarrival=50.0, seed=7)
save_trace(trace, out / "smoke.json")
digest = trace_digest(trace)

def simmr(*args):
    subprocess.run(
        [sys.executable, "-m", "repro", *args], check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )

simmr("trace", "pack", str(out / "smoke.json"), str(out / "smoke.simmr"))
simmr("trace", "unpack", str(out / "smoke.simmr"), str(out / "roundtrip.json"))
assert trace_digest(load_trace(out / "roundtrip.json")) == digest, "digest drift"
print(f"pack/unpack round trip OK (digest {digest})")
PY

echo
echo "== kernel-vs-object digest smoke (engine=columnar vs engine=object) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - <<'PY' || fail=1
import sys

sys.path.insert(0, "src")
from repro.core import ClusterConfig, simulate
from repro.experiments.performance import make_performance_trace
from repro.sanitize.digest import DigestRecorder
from repro.schedulers import FIFOScheduler

trace = make_performance_trace(20, mean_interarrival=50.0, seed=7)
digests = {}
for engine in ("object", "columnar"):
    recorder = DigestRecorder()
    simulate(trace, FIFOScheduler(), ClusterConfig(16, 16),
             engine=engine, record_tasks=False, sanitizer=recorder)
    digests[engine] = (recorder.hexdigest(), recorder.digest.count)
assert digests["object"] == digests["columnar"], (
    f"engine paths diverged: {digests}")
print(f"object and columnar engines bit-identical "
      f"({digests['object'][1]} events, digest {digests['object'][0]})")
PY

echo
echo "== preemptive Fair digest smoke (Fair+P replay mode vs object) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - <<'PY' || fail=1
import sys

sys.path.insert(0, "src")
from repro.core import ClusterConfig, ColumnarEngine, simulate
from repro.experiments.performance import make_performance_trace
from repro.sanitize.digest import DigestRecorder
from repro.schedulers import FairScheduler

# Dense arrivals on a small cluster: pools contend, so Fair+P's
# HFS-style preemption actually kills tasks on both engine paths.
trace = make_performance_trace(30, mean_interarrival=10.0, seed=7)
cluster = ClusterConfig(8, 4)
digests = {}
kills = {}
for engine in ("object", "columnar"):
    recorder = DigestRecorder()
    result = simulate(trace, FairScheduler(preemptive=True), cluster,
                      engine=engine, preemption=True, sanitizer=recorder)
    digests[engine] = (recorder.hexdigest(), recorder.digest.count)
    kills[engine] = sum(1 for r in result.task_records if r.killed)
assert digests["object"] == digests["columnar"], (
    f"preemptive Fair diverged: {digests}")
assert kills["columnar"] > 0, "smoke ran without any live kills"
assert kills["object"] == kills["columnar"], kills
engine = ColumnarEngine(cluster, FairScheduler(preemptive=True), preemption=True)
engine.run(trace)
assert (engine.last_path, engine.last_kernel_mode) == ("kernel", "replay"), (
    engine.last_path, engine.last_kernel_mode, engine.fallback_reason)
print(f"Fair+P replay mode bit-identical with {kills['columnar']} live kills "
      f"({digests['object'][1]} events, digest {digests['object'][0]})")
PY

echo
echo "== policy smoke (POL00x certification + pinned simmr evolve) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - <<'PY' || fail=1
import sys

sys.path.insert(0, "src")
from repro.core import ClusterConfig, simulate
from repro.experiments.performance import make_performance_trace
from repro.policy import (
    EvolveConfig, compile_policy, evolve, example_policy, validate_policy,
)
from repro.sanitize.digest import DigestRecorder
from repro.schedulers import FIFOScheduler

# 1. every example tree certifies and compiles
for name in ("fifo-tree", "edf-tree", "deadline-aware"):
    report = validate_policy(example_policy(name), label=name)
    assert report.ok, (name, report.findings)
    compile_policy(example_policy(name))

# 2. the compiled fifo-tree replays digest-identical to hand-written FIFO
trace = make_performance_trace(20, mean_interarrival=50.0, seed=7)
digests = []
for sched in (FIFOScheduler(), compile_policy(example_policy("fifo-tree"))):
    recorder = DigestRecorder()
    simulate(trace, sched, ClusterConfig(16, 16),
             record_tasks=False, sanitizer=recorder)
    digests.append(recorder.hexdigest())
assert digests[0] == digests[1], f"tree-FIFO diverged from FIFO: {digests}"

# 3. tiny pinned evolve: winner tree + replay digest are constants
result = evolve(EvolveConfig(
    seed=7, population=8, generations=2, jobs=10, traces=1,
    mean_interarrival=20.0, deadline_factor=1.3,
    map_slots=16, reduce_slots=16,
))
assert result.winner_digest == "9dc0fc4e859bb4ade7c619673843c600", result.winner_digest
assert result.winner_event_digests == ("bd852d1077eef4b4987fe5ecb0429e41",), (
    result.winner_event_digests)
assert result.beats_baselines, result.baselines
print(f"examples certified; tree-FIFO == FIFO ({digests[0]}); "
      f"evolve winner pinned ({result.winner.name}, "
      f"digest {result.winner_digest})")
PY

echo
if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check src tests =="
    ruff check src tests || fail=1
else
    echo "== ruff: not installed, skipping (pip install ruff) =="
fi

echo
if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (strict on repro.core / repro.analysis) =="
    MYPYPATH=src mypy -p repro.core -p repro.analysis || fail=1
else
    echo "== mypy: not installed, skipping (pip install mypy) =="
fi

exit $fail
