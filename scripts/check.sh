#!/usr/bin/env bash
# One-shot static gate: simlint + docs + ruff + mypy.
#
# simlint and the docs checker always run (both ship with the repo).
# ruff and mypy run when installed and are skipped with a notice
# otherwise, so the gate works in minimal containers; install the
# [dev] extra to get them.
#
# Usage: scripts/check.sh   (or: make lint)
set -u
cd "$(dirname "$0")/.."
fail=0

echo "== simlint (python -m repro lint src/repro) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro lint src/repro || fail=1

echo
if [ -d docs ]; then
    echo "== docs (scripts/check_docs.py) =="
    python scripts/check_docs.py || fail=1
else
    echo "== docs: docs/ missing, skipping =="
fi

echo
if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check src tests =="
    ruff check src tests || fail=1
else
    echo "== ruff: not installed, skipping (pip install ruff) =="
fi

echo
if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (strict on repro.core / repro.analysis) =="
    MYPYPATH=src mypy -p repro.core -p repro.analysis || fail=1
else
    echo "== mypy: not installed, skipping (pip install mypy) =="
fi

exit $fail
