#!/usr/bin/env python
"""Comparing deadline-driven schedulers on a shared cluster.

The paper's Section V case study in miniature: a mix of the six
applications arrives with exponential inter-arrival times and per-job
deadlines; MinEDF (model-derived minimal allocations) and MaxEDF
(maximal allocations in EDF order) — plus deadline-blind FIFO and Fair
for context — compete on the *relative deadline exceeded* metric,
``sum over late jobs of (T - D) / D``.

Run: ``python examples/deadline_schedulers.py``
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, FairScheduler, FIFOScheduler, MaxEDFScheduler, MinEDFScheduler, simulate
from repro.workloads import permuted_deadline_trace, testbed_mix_profiles


def main() -> None:
    cluster = ClusterConfig(64, 64)
    profiles = testbed_mix_profiles(executions_per_app=2, seed=0)
    print(
        f"workload: {len(profiles)} jobs "
        f"({', '.join(sorted({p.name for p in profiles}))})\n"
    )

    schedulers = [FIFOScheduler, FairScheduler, MaxEDFScheduler, MinEDFScheduler]
    runs = 25

    for deadline_factor in (1.5, 3.0):
        print(f"deadline factor {deadline_factor} "
              f"(deadlines uniform in [T_J, {deadline_factor}*T_J]):")
        print(f"  {'mean inter-arrival':>19} " + " ".join(f"{s.name:>8}" for s in schedulers))
        for mean_ia in (10.0, 100.0, 1000.0):
            totals = {s.name: 0.0 for s in schedulers}
            for run in range(runs):
                seed = np.random.default_rng((int(deadline_factor * 10), int(mean_ia), run))
                trace = permuted_deadline_trace(
                    profiles, mean_ia, deadline_factor, cluster, seed=seed
                )
                for sched_cls in schedulers:
                    result = simulate(trace, sched_cls(), cluster, record_tasks=False)
                    totals[sched_cls.name] += result.relative_deadline_exceeded()
            cells = " ".join(f"{totals[s.name] / runs:>8.2f}" for s in schedulers)
            print(f"  {mean_ia:>18.0f}s {cells}")
        print()

    print(
        "Lower is better.  MinEDF allocates each job only what its\n"
        "deadline requires, leaving spare slots for urgent arrivals —\n"
        "which is exactly where it beats MaxEDF (paper Figures 7-8)."
    )


if __name__ == "__main__":
    main()
