#!/usr/bin/env python
"""What-if studies on a synthetic Facebook-like workload.

Demonstrates the Synthetic TraceGen branch of SimMR (paper Section V-C):

1. generate a trace from the paper's fitted LogNormal task-duration
   distributions and Facebook job-size bins;
2. sanity-check the generator by fitting the distribution family back
   from the generated durations (the paper's StatAssist workflow);
3. answer a what-if: how much does doubling the cluster help the
   deadline-miss metric under each scheduler?

Run: ``python examples/synthetic_facebook.py``
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, FIFOScheduler, MaxEDFScheduler, MinEDFScheduler, simulate
from repro.stats import fit_best, fit_lognormal
from repro.trace.arrivals import ExponentialArrivals
from repro.trace.deadlines import DeadlineFactorPolicy
from repro.trace.synthetic import SyntheticTraceGen
from repro.workloads import FACEBOOK_MAP_LOGNORMAL, FacebookJobSpec


def main() -> None:
    spec = FacebookJobSpec()
    base_cluster = ClusterConfig(64, 64)

    gen = SyntheticTraceGen(
        [spec],
        ExponentialArrivals(60.0),
        deadline_policy=DeadlineFactorPolicy(1.5, base_cluster),
        seed=3,
    )
    trace = gen.generate(150)
    sizes = [j.profile.num_maps for j in trace]
    print(
        f"generated {len(trace)} Facebook-like jobs: "
        f"{sum(1 for s in sizes if s <= 2)} tiny (<=2 maps), "
        f"{max(sizes)} maps in the largest\n"
    )

    # StatAssist-style check: the generated map durations should fit a
    # LogNormal with roughly the paper's parameters (fits are on ms).
    map_durations_ms = np.concatenate(
        [j.profile.map_durations for j in trace if j.profile.num_maps > 0]
    ) * 1000.0
    mu, sigma, ks = fit_lognormal(map_durations_ms)
    best = fit_best(map_durations_ms, families=("lognorm", "expon", "gamma", "norm"))
    print(
        f"refit of generated map durations: LN({mu:.3f}, {sigma:.3f}), KS {ks:.4f} "
        f"(paper fit: LN{FACEBOOK_MAP_LOGNORMAL}, KS 0.1056)"
    )
    print(f"best-fitting family among candidates: {best.family}\n")

    # What-if: double the cluster.
    print(f"{'cluster':>10} {'scheduler':>10} {'relative deadline exceeded':>27}")
    for cluster in (base_cluster, ClusterConfig(128, 128)):
        for scheduler in (FIFOScheduler(), MaxEDFScheduler(), MinEDFScheduler()):
            result = simulate(trace, scheduler, cluster, record_tasks=False)
            label = f"{cluster.map_slots}x{cluster.reduce_slots}"
            print(
                f"{label:>10} {scheduler.name:>10} "
                f"{result.relative_deadline_exceeded():>27.2f}"
            )
    print(
        "\n(The deadline policy was calibrated for the 64x64 cluster, so the\n"
        "128x128 rows show how much headroom doubling the hardware buys.)"
    )


if __name__ == "__main__":
    main()
