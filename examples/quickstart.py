#!/usr/bin/env python
"""Quickstart: simulate a MapReduce workload in a few lines.

Builds two jobs (a recorded-style WordCount template and a synthetic
Sort execution), replays them on a 64x64-slot cluster under FIFO, and
prints per-job timings and engine statistics.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, FIFOScheduler, TraceJob, simulate
from repro.workloads import app_spec


def main() -> None:
    rng = np.random.default_rng(0)

    # A job template is just per-task durations; normally it comes from
    # MRProfiler (real logs) or Synthetic TraceGen (models).  Here we
    # sample one execution of each of two built-in application models.
    wordcount = app_spec("WordCount").make_profile(rng)
    sort = app_spec("Sort").make_profile(rng)

    # A trace is a list of (profile, submit time[, deadline]) entries.
    trace = [
        TraceJob(wordcount, submit_time=0.0),
        TraceJob(sort, submit_time=30.0),
    ]

    # Replay it: the engine emulates the Hadoop job master's map/reduce
    # slot allocation decisions at task granularity.
    cluster = ClusterConfig(map_slots=64, reduce_slots=64)
    result = simulate(trace, FIFOScheduler(), cluster)

    print(f"simulated {len(result.jobs)} jobs on a {cluster.map_slots}x"
          f"{cluster.reduce_slots}-slot cluster under {result.scheduler_name}")
    print(f"makespan: {result.makespan:.1f}s simulated in "
          f"{result.wall_clock_seconds * 1000:.1f}ms wall-clock "
          f"({result.events_per_second:,.0f} events/s)\n")

    print(f"{'job':>3}  {'name':<10} {'submit':>7} {'map end':>8} {'done':>7} {'T_J':>7}")
    for job in result.jobs:
        print(
            f"{job.job_id:>3}  {job.name:<10} {job.submit_time:>7.1f} "
            f"{job.map_stage_end:>8.1f} {job.completion_time:>7.1f} {job.duration:>7.1f}"
        )

    # Task-level records are available too — e.g. the shuffle/reduce
    # phase boundary of the first reduce task of job 0:
    reduce0 = result.task_records_for(0, "reduce")[0]
    print(
        f"\njob 0 reduce task 0: started {reduce0.start:.1f}s, "
        f"shuffle finished {reduce0.shuffle_end:.1f}s, done {reduce0.end:.1f}s "
        f"({'first' if reduce0.first_wave else 'later'} wave)"
    )


if __name__ == "__main__":
    main()
