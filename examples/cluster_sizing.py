#!/usr/bin/env python
"""Sizing a cluster for a GridMix-style load with multi-job pipelines.

The full "daily tasks" workflow the paper envisions for administrators:

1. describe tomorrow's load — a GridMix-shaped mix plus a three-stage
   TF-IDF pipeline with a workflow-level deadline;
2. ask the planner for the smallest cluster that (a) finishes the batch
   within the maintenance window and (b) meets the pipeline deadline;
3. sanity-check the recommendation with utilization metrics and compare
   scheduler choices on the recommended hardware.

Run: ``python examples/cluster_sizing.py``
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, FIFOScheduler, simulate
from repro.core import utilization
from repro.planner import ClusterPlanner
from repro.schedulers import FairScheduler, FlexScheduler
from repro.trace import BatchArrivals, chain
from repro.workloads import gridmix_specs, gridmix_trace_generator


def main() -> None:
    rng = np.random.default_rng(4)

    # Tomorrow's batch: 30 GridMix jobs dropped at the window start ...
    gen = gridmix_trace_generator(BatchArrivals(), seed=rng)
    trace = gen.generate(30)
    # ... plus a three-stage pipeline (extract -> aggregate -> rank) that
    # must deliver within 2000s of the window opening.
    specs = gridmix_specs()
    pipeline = chain(
        "nightly-tfidf",
        [specs["webdataScan.medium"], specs["streamSort.medium"], specs["combiner.medium"]],
        stage_names=["extract", "aggregate", "rank"],
    )
    trace += pipeline.instantiate(0.0, rng, base_index=len(trace), deadline=2000.0)
    total_tasks = sum(j.profile.num_maps + j.profile.num_reduces for j in trace)
    print(f"workload: {len(trace)} jobs, {total_tasks} tasks, "
          f"one pipeline deadline at 2000s\n")

    planner = ClusterPlanner()
    window = 3600.0
    for_window = planner.min_cluster_for_makespan(trace, window)
    for_deadline = planner.min_cluster_for_deadlines(trace)
    need = max(for_window.map_slots, for_deadline.map_slots)
    print(f"smallest cluster for the {window:.0f}s window:   "
          f"{for_window.map_slots} map + {for_window.reduce_slots} reduce slots")
    print(f"smallest cluster for the pipeline deadline: "
          f"{for_deadline.map_slots} map + {for_deadline.reduce_slots} reduce slots")
    print(f"=> provision {need} map + {need} reduce slots\n")

    cluster = ClusterConfig(need, need)
    result = simulate(trace, FIFOScheduler(), cluster)
    report = utilization(result, cluster)
    print(f"verification on {need}x{need} (FIFO): makespan {result.makespan:.0f}s, "
          f"map slots {report.map_utilization:.0%} busy, "
          f"reduce slots {report.reduce_utilization:.0%} busy")
    missed = result.jobs_missed_deadline()
    print(f"deadline check: {'all met' if not missed else f'{len(missed)} missed'}\n")

    print("scheduler choice on the recommended cluster:")
    print(f"  {'policy':22} {'makespan':>9} {'mean T_J':>9}")
    for sched in (FIFOScheduler(), FairScheduler(), FlexScheduler("avg_response"),
                  FlexScheduler("max_stretch")):
        r = simulate(trace, sched, cluster, record_tasks=False)
        mean_t = float(np.mean(list(r.durations().values())))
        print(f"  {r.scheduler_name:22} {r.makespan:>8.0f}s {mean_t:>8.0f}s")
    print("\nFlex(avg_response) trades a little makespan for much faster "
          "small jobs — pick by what the SLOs reward.")


if __name__ == "__main__":
    main()
