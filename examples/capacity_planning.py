#!/usr/bin/env python
"""Capacity planning: how many slots does a job need to meet a deadline?

The scenario from the paper's introduction: a production job must finish
within a (soft) deadline, and an administrator needs to know the minimal
resource allocation that achieves it — without hours of testbed runs.

This example:

1. profiles a WikiTrends-style job (one sampled execution);
2. inverts the ARIA performance model to get the minimal (map, reduce)
   slot demand for a range of deadlines (the Lagrange closed form);
3. *verifies* each recommendation by replaying the job in SimMR with the
   recommended allocation capped (the paper's modified FIFO scheduler).

Run: ``python examples/capacity_planning.py``
"""

from __future__ import annotations

import numpy as np

from repro import CappedFIFOScheduler, ClusterConfig, TraceJob, simulate
from repro.models import estimate_completion_time, min_slots_for_deadline
from repro.trace.deadlines import solo_completion_time
from repro.workloads import app_spec


def main() -> None:
    rng = np.random.default_rng(1)
    cluster = ClusterConfig(64, 64)
    profile = app_spec("WikiTrends").make_profile(rng)

    t_best = solo_completion_time(profile, cluster)
    print(
        f"job: {profile.name} ({profile.num_maps} maps, {profile.num_reduces} reduces)\n"
        f"best possible completion on the full {cluster.map_slots}x"
        f"{cluster.reduce_slots} cluster: {t_best:.0f}s\n"
    )

    # bound="upper" inverts the conservative (worst-case) completion-time
    # bound: recommendations are guaranteed by the model, at the cost of a
    # slot or two of headroom.  MinEDF uses bound="average" (the paper's
    # "good approximation"), trading occasional near-misses for tighter
    # packing.
    print(f"{'deadline':>9} {'map slots':>10} {'red slots':>10} "
          f"{'model est.':>11} {'simulated':>10} {'met?':>5}")
    for factor in (1.05, 1.2, 1.5, 2.0, 3.0, 5.0):
        deadline = t_best * factor
        m, r = min_slots_for_deadline(profile, deadline, cluster, bound="upper")
        estimate = estimate_completion_time(profile, max(m, 1), max(r, 1), bound="upper")

        # Verify by simulation: cap the job at the recommended allocation.
        result = simulate(
            [TraceJob(profile, 0.0)],
            CappedFIFOScheduler(m, r or None),
            cluster,
        )
        simulated = result.jobs[0].duration
        met = "yes" if simulated <= deadline else "NO"
        print(
            f"{deadline:>8.0f}s {m:>10} {r:>10} {estimate:>10.0f}s "
            f"{simulated:>9.0f}s {met:>5}"
        )

    print(
        "\nLooser deadlines need fewer slots — the spare capacity is what\n"
        "the MinEDF scheduler hands to other jobs (see the scheduler\n"
        "comparison example)."
    )


if __name__ == "__main__":
    main()
