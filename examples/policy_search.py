#!/usr/bin/env python
"""Policy trees end to end: validate, compile, replay, evolve.

The `repro.policy` walkthrough (docs/policies.md):

1. load a policy tree from JSON (``examples/policies/deadline_aware.json``),
   certify it with the POL00x rules and show a rejection's findings;
2. compile trees to real schedulers and replay a deadline workload,
   comparing them against the hand-written FIFO/MaxEDF policies on the
   paper's *relative deadline exceeded* utility;
3. run a tiny seeded `simmr evolve` search and show that the winning
   tree — and its replay event digest — are reproducible constants.

Run: ``python examples/policy_search.py``
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import ClusterConfig, FIFOScheduler, MaxEDFScheduler, simulate
from repro.policy import (
    EvolveConfig,
    compile_policy,
    evolve,
    policy_digest,
    validate_policy,
)
from repro.trace.arrivals import ExponentialArrivals
from repro.trace.deadlines import DeadlineFactorPolicy
from repro.trace.synthetic import SyntheticTraceGen
from repro.workloads.apps import make_app_specs

POLICY_FILE = Path(__file__).parent / "policies" / "deadline_aware.json"


def make_trace(jobs: int = 20, seed: int = 5):
    cluster = ClusterConfig(32, 32)
    gen = SyntheticTraceGen(
        list(make_app_specs().values()),
        ExponentialArrivals(25.0),
        deadline_policy=DeadlineFactorPolicy(1.5, cluster),
        seed=seed,
    )
    return gen.generate(jobs), cluster


def main() -> None:
    # -- 1. validate ---------------------------------------------------
    source = POLICY_FILE.read_text()
    report = validate_policy(source, label=POLICY_FILE.name)
    assert report.ok and report.doc is not None
    print(f"{POLICY_FILE.name}: certified "
          f"(digest {policy_digest(report.doc)}, "
          f"{'static' if report.doc.is_static() else 'dynamic'} tree)\n")

    broken = json.loads(source)
    broken["tree"]["if"]["feature"] = "phase_of_moon"
    rejection = validate_policy(broken, label="broken")
    print("a broken tree is rejected with a pointer into the document:")
    for finding in rejection.findings:
        print(f"  {finding.format()}")
    print()

    # -- 2. compile and replay ----------------------------------------
    trace, cluster = make_trace()
    contenders = {
        "fifo (hand-written)": FIFOScheduler(),
        "maxedf (hand-written)": MaxEDFScheduler(),
        "deadline_aware (tree)": compile_policy(source),
    }
    print(f"{len(trace)} jobs, {cluster.map_slots}x{cluster.reduce_slots} slots:")
    for name, scheduler in contenders.items():
        result = simulate(trace, scheduler, cluster)
        print(f"  {name:24} utility {result.relative_deadline_exceeded():8.3f}  "
              f"makespan {result.makespan:9.1f}s")
    print()

    # -- 3. evolve -----------------------------------------------------
    config = EvolveConfig(
        seed=7, population=8, generations=2, jobs=10, traces=1,
        mean_interarrival=20.0, deadline_factor=1.3,
        map_slots=16, reduce_slots=16,
    )
    print(f"evolve(seed={config.seed}): {config.population} trees, "
          f"{config.generations} generations ...")
    result = evolve(config)
    print(f"  winner {result.winner.name} "
          f"(digest {result.winner_digest})")
    print(f"  fitness {result.winner_fitness}  "
          f"event digest {result.winner_event_digests[0]}")
    for name, entry in result.baselines.items():
        print(f"  baseline {name:8} fitness {tuple(entry['fitness'])}")
    print(f"  beats both baselines: {result.beats_baselines}")


if __name__ == "__main__":
    main()
