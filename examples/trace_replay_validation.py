#!/usr/bin/env python
"""Validating the simulator against a (emulated) Hadoop cluster.

Reproduces the paper's validation methodology end to end:

1. run the six applications on the fine-grained Hadoop cluster emulator
   (TaskTrackers, heartbeats, per-node speed variation);
2. let MRProfiler extract job templates from the JobTracker history logs;
3. replay the extracted trace in SimMR — and in the Mumak baseline,
   which skips the shuffle phase;
4. compare everyone's completion times against the "actual" run.

Run: ``python examples/trace_replay_validation.py``
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, FIFOScheduler, TraceJob, simulate
from repro.hadoop import EmulatorConfig, HadoopClusterEmulator
from repro.mrprofiler import profile_history
from repro.mumak import MumakSimulator, extract_rumen_trace, rumen_to_trace
from repro.workloads import make_app_specs


def main() -> None:
    rng = np.random.default_rng(7)
    specs = make_app_specs()
    trace = [
        TraceJob(spec.make_profile(rng), i * 2000.0)
        for i, spec in enumerate(specs.values())
    ]

    config = EmulatorConfig(seed=1)
    print(
        f"executing {len(trace)} jobs on the emulated "
        f"{config.num_nodes}-node cluster (heartbeat "
        f"{config.heartbeat_interval}s, slowstart "
        f"{config.min_map_percent_completed:.0%}) ..."
    )
    actual = HadoopClusterEmulator(config, FIFOScheduler()).run(trace)
    history = actual.history_text()
    print(
        f"done: makespan {actual.makespan:.0f}s simulated, "
        f"{len(history.splitlines())} history-log lines written\n"
    )

    profiled = profile_history(history)
    replay = [TraceJob(pj.profile, pj.submit_time) for pj in profiled]
    simmr = simulate(replay, FIFOScheduler(), config.aggregate_cluster())
    mumak = MumakSimulator(num_nodes=config.num_nodes).run(
        rumen_to_trace(extract_rumen_trace(history))
    )

    print(f"{'application':<12} {'actual':>8} {'SimMR':>8} {'err':>6} {'Mumak':>8} {'err':>6}")
    simmr_errs, mumak_errs = [], []
    for i, pj in enumerate(profiled):
        s, m = simmr.jobs[i].duration, mumak.jobs[i].duration
        es = abs(s - pj.duration) / pj.duration * 100
        em = abs(m - pj.duration) / pj.duration * 100
        simmr_errs.append(es)
        mumak_errs.append(em)
        print(
            f"{pj.profile.name:<12} {pj.duration:>7.0f}s {s:>7.0f}s {es:>5.1f}% "
            f"{m:>7.0f}s {em:>5.1f}%"
        )
    print(
        f"\nSimMR error: {np.mean(simmr_errs):.1f}% avg, {np.max(simmr_errs):.1f}% max "
        f"(paper: 2.7% / 6.6%)"
    )
    print(
        f"Mumak error: {np.mean(mumak_errs):.1f}% avg, {np.max(mumak_errs):.1f}% max, "
        f"always underestimating (paper: 37% / 51.7%) — it skips the shuffle."
    )


if __name__ == "__main__":
    main()
