#!/usr/bin/env python
"""Simulation service round trip: serve, submit, verify, reuse.

Starts a :class:`SimulationServer` in-process on an ephemeral port,
submits the same replay twice through the HTTP client — once cold
(simulated by the worker pool) and once warm (answered from the result
cache) — and proves the response is trustworthy by comparing its event
digest against a local :func:`simulate_many` replay.

Run: ``python examples/service_client.py``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ClusterConfig, ServiceClient, ServiceConfig, SimulationServer
from repro.parallel import SchedulerSpec, SimTask, simulate_many
from repro.trace.arrivals import ExponentialArrivals
from repro.trace.synthetic import SyntheticTraceGen
from repro.workloads.apps import make_app_specs


def main() -> None:
    gen = SyntheticTraceGen(
        list(make_app_specs().values()), ExponentialArrivals(60.0), seed=7
    )
    trace = gen.generate(8)
    cluster = ClusterConfig(map_slots=64, reduce_slots=64)

    # What the answer *should* be: replay locally and keep the digest.
    [local] = simulate_many(
        {"t": trace},
        [SimTask(trace_id="t", cluster=cluster,
                 scheduler=SchedulerSpec(kind="registry", name="minedf"))],
        cache=None,
    )
    print(f"local replay: makespan {local.result.makespan:.1f}s, "
          f"digest {local.result.event_digest[:16]}…")

    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(port=0, workers=2,
                               cache=Path(tmp) / "cache.sqlite")
        with SimulationServer(config).start() as server:
            print(f"service up at {server.url}")
            client = ServiceClient(server.url)

            # Cold: the worker pool simulates and caches the run.
            cold = client.replay(trace, scheduler="minedf", cluster=cluster)
            print(f"cold submit : makespan {cold.result.makespan:.1f}s in "
                  f"{cold.server_seconds:.3f}s (cached={cold.cached}, "
                  f"{cold.request_id})")

            # Warm: the identical question is a cache hit — no simulation.
            warm = client.replay(trace, scheduler="minedf", cluster=cluster)
            print(f"warm submit : makespan {warm.result.makespan:.1f}s in "
                  f"{warm.server_seconds:.3f}s (cached={warm.cached}, "
                  f"{warm.request_id})")

            assert cold.event_digest == local.result.event_digest
            assert warm.event_digest == local.result.event_digest
            assert not cold.cached and warm.cached
            print("verify      : both digests match the local replay")

            hit_line = next(
                line for line in client.metrics().splitlines()
                if line.startswith("simmr_cache_hit_rate")
            )
            print(f"metrics     : {hit_line}")
        print("service drained and shut down cleanly")


if __name__ == "__main__":
    main()
