# Convenience targets; CI-equivalent gates.
#
#   make lint   - simlint + ruff + mypy (latter two skipped if absent)
#   make test   - the tier-1 pytest suite (includes the simlint gate)
#   make check  - both

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test check

lint:
	bash scripts/check.sh

test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q

check: lint test
