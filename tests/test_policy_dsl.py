"""Tests for repro.policy: DSL, POL00x validation, compiler, digests.

The tentpole guarantees under test:

* every POL00x rule fires on a minimal witness document and carries a
  JSON-pointer path into the tree;
* canonical serialization is a fixed point: serialize -> parse ->
  serialize is byte-identical, and the policy digest is stable;
* compiled trees are *real* schedulers — the state-free ``fifo-tree``
  and ``edf-tree`` examples replay event-digest-identical to the
  hand-written FIFO and MaxEDF schedulers on both engine paths, and
  round-tripping the tree through its canonical JSON changes nothing;
* random trees (valid by construction) always certify, and random
  corruptions are rejected with the *specific* POL rule id.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.core import ClusterConfig, TraceJob
from repro.core.engine import simulate
from repro.policy import (
    EXAMPLE_POLICIES,
    FEATURES,
    MAX_DEPTH,
    MAX_TERMS,
    CompiledDynamicPolicy,
    CompiledStaticPolicy,
    Leaf,
    PolicyDoc,
    PolicyError,
    Predicate,
    ScoreTerm,
    canonical_policy_json,
    compile_policy,
    example_policy,
    parse_policy,
    policy_digest,
    policy_spec,
    random_policy,
    validate_policy,
)
from repro.sanitize.digest import DigestRecorder
from repro.schedulers import FIFOScheduler
from repro.schedulers.edf import MaxEDFScheduler

from conftest import make_random_profile


@pytest.fixture
def trace(rng):
    profiles = [
        make_random_profile(rng, num_maps=16, num_reduces=6),
        make_random_profile(rng, num_maps=40, num_reduces=12),
        make_random_profile(rng, num_maps=6, num_reduces=2),
    ]
    jobs = []
    t = 0.0
    for i in range(9):
        profile = profiles[i % len(profiles)]
        deadline = (t + 300.0 + 90.0 * i) if i % 2 == 0 else None
        jobs.append(TraceJob(profile, t, deadline=deadline))
        t += float(rng.integers(5, 60))
    return jobs


def rule_ids(report):
    return {f.rule_id for f in report.findings}


def run_digest(trace, scheduler, engine="object", cluster=None):
    recorder = DigestRecorder()
    simulate(
        trace,
        scheduler,
        cluster or ClusterConfig(16, 16),
        engine=engine,
        sanitizer=recorder,
    )
    return recorder.hexdigest()


# --------------------------------------------------------------------------- #
# validation: the POL00x rules
# --------------------------------------------------------------------------- #

class TestValidation:
    def test_examples_all_certify(self):
        for name, doc in EXAMPLE_POLICIES.items():
            report = validate_policy(doc, label=name)
            assert report.ok, report.findings
            assert report.doc is not None

    def test_pol001_not_an_object(self):
        report = validate_policy("[1, 2]")
        assert not report.ok
        assert rule_ids(report) == {"POL001"}

    def test_pol001_invalid_json_text(self):
        report = validate_policy("{nope")
        assert not report.ok
        assert rule_ids(report) == {"POL001"}

    def test_pol001_missing_and_unknown_keys(self):
        report = validate_policy({"version": 1, "bogus": 1})
        assert "POL001" in rule_ids(report)
        messages = " ".join(f.message for f in report.findings)
        assert "bogus" in messages and "'tree' is required" in messages

    def test_pol001_wrong_version(self):
        report = validate_policy(
            {"version": 99, "name": "x", "tree": {"pick": "fifo"}}
        )
        assert not report.ok
        assert "POL001" in rule_ids(report)

    def test_pol001_leaf_and_predicate_mixed(self):
        tree = {"pick": "fifo", "if": {"feature": "queue_depth", "op": "<", "value": 1}}
        report = validate_policy({"version": 1, "name": "x", "tree": tree})
        assert not report.ok
        assert "POL001" in rule_ids(report)

    def test_pol002_unknown_feature(self):
        tree = {"score": [{"feature": "phase_of_moon", "weight": 1.0}]}
        report = validate_policy({"version": 1, "name": "x", "tree": tree})
        assert rule_ids(report) == {"POL002"}
        (finding,) = report.findings
        assert finding.path.endswith("#/tree/score/0/feature")

    def test_pol002_unknown_pick_and_op(self):
        report = validate_policy(
            {"version": 1, "name": "x", "tree": {"pick": "lifo"}}
        )
        assert rule_ids(report) == {"POL002"}
        tree = {
            "if": {"feature": "queue_depth", "op": "==", "value": 1},
            "then": {"pick": "fifo"},
            "else": {"pick": "edf"},
        }
        report = validate_policy({"version": 1, "name": "x", "tree": tree})
        assert "POL002" in rule_ids(report)

    def test_pol003_depth_bound(self):
        tree: dict = {"pick": "fifo"}
        for _ in range(MAX_DEPTH + 1):
            tree = {
                "if": {"feature": "queue_depth", "op": "<", "value": 1.0},
                "then": tree,
                "else": {"pick": "edf"},
            }
        report = validate_policy({"version": 1, "name": "deep", "tree": tree})
        assert not report.ok
        assert "POL003" in rule_ids(report)

    def test_pol003_term_bound_and_zero_weight(self):
        too_many = [
            {"feature": "num_maps", "weight": 1.0} for _ in range(MAX_TERMS + 1)
        ]
        report = validate_policy(
            {"version": 1, "name": "x", "tree": {"score": too_many}}
        )
        assert "POL003" in rule_ids(report)
        # 0 * inf = nan would poison the ordering, so zero weights are banned
        report = validate_policy(
            {"version": 1, "name": "x",
             "tree": {"score": [{"feature": "deadline", "weight": 0.0}]}}
        )
        assert "POL003" in rule_ids(report)

    def test_pol003_non_finite_values(self):
        for bad in (float("inf"), float("nan")):
            report = validate_policy(
                {"version": 1, "name": "x",
                 "tree": {"score": [{"feature": "num_maps", "weight": bad}]}}
            )
            assert "POL003" in rule_ids(report), bad

    def test_pol004_unreachable_branch_warns_but_passes(self):
        # Outer q<5, inner q>=10 on the then-branch: inner-then is dead.
        tree = {
            "if": {"feature": "queue_depth", "op": "<", "value": 5.0},
            "then": {
                "if": {"feature": "queue_depth", "op": ">=", "value": 10.0},
                "then": {"pick": "fifo"},
                "else": {"pick": "edf"},
            },
            "else": {"pick": "sjf"},
        }
        report = validate_policy({"version": 1, "name": "dead", "tree": tree})
        assert "POL004" in rule_ids(report)
        assert report.ok  # WARNING severity: reported, not blocking

    def test_pol005_static_contract(self):
        tree = {"score": [{"feature": "queue_depth", "weight": 1.0}]}
        report = validate_policy(
            {"version": 1, "name": "x", "tree": tree, "static": True}
        )
        assert "POL005" in rule_ids(report)
        # without the declaration the same tree is a fine dynamic policy
        report = validate_policy({"version": 1, "name": "x", "tree": tree})
        assert report.ok

    def test_parse_policy_raises_with_findings(self):
        with pytest.raises(PolicyError) as excinfo:
            parse_policy({"version": 1, "name": "x", "tree": {"pick": "lifo"}})
        assert excinfo.value.findings
        assert excinfo.value.findings[0].rule_id == "POL002"

    def test_findings_carry_label_and_pointer(self):
        report = validate_policy(
            {"version": 1, "name": "x", "tree": {"pick": "lifo"}},
            label="policy:demo",
        )
        (finding,) = report.findings
        assert finding.path == "policy:demo#/tree/pick"
        assert finding.line == 0


# --------------------------------------------------------------------------- #
# canonical serialization
# --------------------------------------------------------------------------- #

class TestCanonicalForm:
    def test_round_trip_fixed_point(self):
        for name in EXAMPLE_POLICIES:
            doc = parse_policy(example_policy(name))
            text = canonical_policy_json(doc)
            again = canonical_policy_json(parse_policy(text))
            assert again == text
            assert policy_digest(parse_policy(text)) == policy_digest(doc)

    def test_canonical_form_is_key_order_independent(self):
        a = {"version": 1, "name": "x", "tree": {"pick": "fifo"}}
        b = {"tree": {"pick": "fifo"}, "name": "x", "version": 1}
        assert canonical_policy_json(parse_policy(a)) == canonical_policy_json(
            parse_policy(b)
        )

    def test_digest_distinguishes_trees(self):
        fifo = parse_policy(example_policy("fifo-tree"))
        edf = parse_policy(example_policy("edf-tree"))
        assert policy_digest(fifo) != policy_digest(edf)


# --------------------------------------------------------------------------- #
# compilation: trees are real schedulers
# --------------------------------------------------------------------------- #

class TestCompiler:
    def test_static_tree_compiles_to_static_priority(self):
        sched = compile_policy(example_policy("fifo-tree"))
        assert isinstance(sched, CompiledStaticPolicy)
        assert sched.static_priority

    def test_dynamic_tree_compiles_to_dynamic(self):
        sched = compile_policy(example_policy("deadline-aware"))
        assert isinstance(sched, CompiledDynamicPolicy)
        assert not getattr(sched, "static_priority", False)

    def test_fifo_tree_digest_identical_to_fifo(self, trace, engine_kind):
        tree = run_digest(trace, compile_policy(example_policy("fifo-tree")),
                          engine=engine_kind)
        hand = run_digest(trace, FIFOScheduler(), engine=engine_kind)
        assert tree == hand

    def test_edf_tree_digest_identical_to_maxedf(self, trace, engine_kind):
        tree = run_digest(trace, compile_policy(example_policy("edf-tree")),
                          engine=engine_kind)
        hand = run_digest(trace, MaxEDFScheduler(), engine=engine_kind)
        assert tree == hand

    def test_round_trip_preserves_replay_digest(self, trace, engine_kind):
        for name in EXAMPLE_POLICIES:
            doc = parse_policy(example_policy(name))
            direct = run_digest(trace, compile_policy(doc.to_dict()),
                                engine=engine_kind)
            rebuilt = run_digest(
                trace, compile_policy(canonical_policy_json(doc)),
                engine=engine_kind,
            )
            assert direct == rebuilt, name

    def test_dynamic_policy_is_deterministic(self, trace):
        doc = example_policy("deadline-aware")
        assert run_digest(trace, compile_policy(doc)) == run_digest(
            trace, compile_policy(doc)
        )

    def test_compile_rejects_invalid(self):
        with pytest.raises(PolicyError):
            compile_policy({"version": 1, "name": "x", "tree": {"pick": "lifo"}})

    def test_policy_spec_is_picklable_and_content_stable(self):
        spec = policy_spec(example_policy("deadline-aware"))
        assert spec.kind == "policy"
        restored = pickle.loads(pickle.dumps(spec))
        assert restored == spec
        # same tree with keys shuffled -> same identity string
        doc = example_policy("deadline-aware")
        doc_shuffled = dict(reversed(list(doc.items())))
        assert policy_spec(doc_shuffled).identity() == spec.identity()


# --------------------------------------------------------------------------- #
# property / fuzz
# --------------------------------------------------------------------------- #

class TestFuzz:
    def test_random_policies_always_certify(self):
        rng = random.Random(99)
        for i in range(60):
            doc = random_policy(rng, f"fuzz-{i}")
            report = validate_policy(doc.to_dict())
            assert report.ok, (i, report.findings)
            text = canonical_policy_json(doc)
            assert canonical_policy_json(parse_policy(text)) == text
            compile_policy(text)

    def test_corruptions_rejected_with_specific_rule(self):
        rng = random.Random(7)
        corruptions = [
            # (mutator over a parsed dict, expected rule id)
            (lambda d: d.pop("tree"), "POL001"),
            (lambda d: d.__setitem__("version", 2), "POL001"),
            (lambda d: d.__setitem__("name", ""), "POL001"),
            (lambda d: d.__setitem__("extra", 1), "POL001"),
            (lambda d: _first_leaf(d["tree"]).update(
                {"score": [{"feature": "bogus", "weight": 1.0}]}), "POL002"),
            (lambda d: _first_leaf(d["tree"]).update(
                {"score": [{"feature": "num_maps", "weight": 0.0}]}), "POL003"),
        ]
        for i, (mutate, expected) in enumerate(corruptions * 3):
            doc = random_policy(rng, f"victim-{i}").to_dict()
            mutate(doc)
            report = validate_policy(doc)
            assert not report.ok, (i, doc)
            assert expected in rule_ids(report), (i, expected, report.findings)

    def test_random_trees_replay_deterministically(self, trace):
        rng = random.Random(3)
        for i in range(5):
            doc = random_policy(rng, f"replay-{i}")
            sched = compile_policy(doc.to_dict())
            first = run_digest(trace, sched)
            second = run_digest(trace, compile_policy(doc.to_dict()))
            assert first == second, i


def _first_leaf(tree: dict) -> dict:
    while "if" in tree:
        tree = tree["then"]
    # normalize a pick-leaf into a score-leaf mutation target
    tree.pop("pick", None)
    return tree


# --------------------------------------------------------------------------- #
# feature vocabulary sanity
# --------------------------------------------------------------------------- #

def test_feature_vocabulary_is_complete_and_typed():
    assert len(FEATURES) == 20
    statics = {n for n, info in FEATURES.items() if info.static}
    assert "submit_time" in statics and "deadline" in statics
    assert "queue_depth" not in statics and "deadline_slack" not in statics


def test_is_static_follows_features():
    static_doc = PolicyDoc("s", Leaf(terms=(ScoreTerm("deadline", 1.0),)))
    dynamic_doc = PolicyDoc("d", Predicate(
        "queue_depth", "<", 4.0, Leaf(pick="fifo"), Leaf(pick="edf"),
    ))
    assert static_doc.is_static()
    assert not dynamic_doc.is_static()
