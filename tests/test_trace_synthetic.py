"""Tests for Synthetic TraceGen, job specs and task-count models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig
from repro.trace.arrivals import ExponentialArrivals, PeriodicArrivals
from repro.trace.deadlines import DeadlineFactorPolicy
from repro.trace.distributions import Constant, Uniform
from repro.trace.synthetic import SyntheticJobSpec, SyntheticTraceGen, TaskCount


def simple_spec(name: str = "app", maps=6, reduces=3) -> SyntheticJobSpec:
    return SyntheticJobSpec(
        name=name,
        num_maps=maps,
        num_reduces=reduces,
        map_durations=Uniform(1.0, 5.0),
        typical_shuffle=Constant(2.0),
        reduce_durations=Constant(1.0),
    )


class TestTaskCount:
    def test_fixed(self, rng):
        tc = TaskCount(7)
        assert all(tc.sample(rng) == 7 for _ in range(10))
        assert tc.max == 7

    def test_choice_respects_support(self, rng):
        tc = TaskCount([1, 10, 100], weights=[0.5, 0.3, 0.2])
        draws = {tc.sample(rng) for _ in range(300)}
        assert draws <= {1, 10, 100}
        assert tc.max == 100

    def test_choice_frequencies(self):
        rng = np.random.default_rng(0)
        tc = TaskCount([0, 1], weights=[0.25, 0.75])
        draws = np.array([tc.sample(rng) for _ in range(4000)])
        assert draws.mean() == pytest.approx(0.75, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskCount([])
        with pytest.raises(ValueError):
            TaskCount([-1])
        with pytest.raises(ValueError):
            TaskCount([1, 2], weights=[1.0])
        with pytest.raises(ValueError):
            TaskCount([1, 2], weights=[-1.0, 2.0])


class TestSyntheticJobSpec:
    def test_make_profile_shapes(self, rng):
        profile = simple_spec().make_profile(rng)
        assert profile.num_maps == 6
        assert profile.num_reduces == 3
        assert profile.map_durations.shape == (6,)
        assert profile.reduce_durations.shape == (3,)
        assert profile.name == "app"

    def test_first_shuffle_defaults_to_typical(self, rng):
        spec = simple_spec()
        assert spec.first_shuffle is spec.typical_shuffle
        profile = spec.make_profile(rng)
        assert np.all(profile.first_shuffle_durations == 2.0)

    def test_two_profiles_are_distinct_executions(self):
        rng = np.random.default_rng(0)
        spec = simple_spec()
        a, b = spec.make_profile(rng), spec.make_profile(rng)
        assert not np.array_equal(a.map_durations, b.map_durations)

    def test_spec_dict_round_trip(self, rng):
        spec = simple_spec()
        rebuilt = SyntheticJobSpec.from_dict(spec.to_spec())
        assert rebuilt.name == spec.name
        a = spec.make_profile(np.random.default_rng(5))
        b = rebuilt.make_profile(np.random.default_rng(5))
        assert np.array_equal(a.map_durations, b.map_durations)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty jobs"):
            SyntheticJobSpec(
                name="nothing",
                num_maps=0,
                num_reduces=0,
                map_durations=Constant(1.0),
                typical_shuffle=Constant(1.0),
                reduce_durations=Constant(1.0),
            )

    def test_map_only_spec(self, rng):
        spec = SyntheticJobSpec(
            name="maponly",
            num_maps=4,
            num_reduces=0,
            map_durations=Constant(2.0),
            typical_shuffle=Constant(1.0),
            reduce_durations=Constant(1.0),
        )
        profile = spec.make_profile(rng)
        assert profile.num_reduces == 0
        assert profile.reduce_durations.size == 0


class TestSyntheticTraceGen:
    def test_generates_requested_jobs(self):
        gen = SyntheticTraceGen([simple_spec()], PeriodicArrivals(10.0), seed=0)
        trace = gen.generate(5)
        assert len(trace) == 5
        assert [j.submit_time for j in trace] == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_deterministic_under_seed(self):
        def build():
            return SyntheticTraceGen(
                [simple_spec()], ExponentialArrivals(20.0), seed=42
            ).generate(10)

        t1, t2 = build(), build()
        assert [j.submit_time for j in t1] == [j.submit_time for j in t2]
        assert all(
            np.array_equal(a.profile.map_durations, b.profile.map_durations)
            for a, b in zip(t1, t2)
        )

    def test_mix_weights(self):
        specs = [simple_spec("heavy"), simple_spec("rare")]
        gen = SyntheticTraceGen(
            specs, PeriodicArrivals(1.0), mix=[0.9, 0.1], seed=0
        )
        names = [j.profile.name for j in gen.generate(500)]
        assert names.count("heavy") > 350

    def test_deadline_policy_applied(self):
        cluster = ClusterConfig(8, 8)
        gen = SyntheticTraceGen(
            [simple_spec()],
            PeriodicArrivals(100.0),
            deadline_policy=DeadlineFactorPolicy(2.0, cluster),
            seed=0,
        )
        trace = gen.generate(5)
        assert all(j.deadline is not None and j.deadline > j.submit_time for j in trace)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            SyntheticTraceGen([], PeriodicArrivals(1.0))
        with pytest.raises(ValueError, match="mix"):
            SyntheticTraceGen([simple_spec()], PeriodicArrivals(1.0), mix=[0.5, 0.5])
        gen = SyntheticTraceGen([simple_spec()], PeriodicArrivals(1.0))
        with pytest.raises(ValueError):
            gen.generate(-1)
