"""Tests for arrival processes and the deadline-factor policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, TraceJob
from repro.trace.arrivals import (
    BatchArrivals,
    ExponentialArrivals,
    PeriodicArrivals,
    RecordedArrivals,
)
from repro.trace.deadlines import (
    DeadlineFactorPolicy,
    clear_solo_cache,
    solo_completion_time,
)

from conftest import make_constant_profile, make_random_profile


class TestArrivalProcesses:
    @pytest.mark.parametrize(
        "process",
        [
            ExponentialArrivals(10.0),
            PeriodicArrivals(5.0),
            BatchArrivals(),
            RecordedArrivals([0.0, 3.0, 9.0]),
        ],
        ids=lambda p: type(p).__name__,
    )
    def test_monotone_and_start_at_zero(self, process, rng):
        times = process.sample(20, rng)
        assert times.shape == (20,)
        assert times[0] == 0.0
        assert np.all(np.diff(times) >= 0)

    def test_exponential_mean(self):
        times = ExponentialArrivals(50.0).sample(20000, np.random.default_rng(0))
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(50.0, rel=0.05)

    def test_exponential_zero_jobs(self, rng):
        assert ExponentialArrivals(1.0).sample(0, rng).size == 0

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            ExponentialArrivals(0.0)

    def test_periodic_spacing(self, rng):
        times = PeriodicArrivals(7.0).sample(4, rng)
        assert np.allclose(times, [0.0, 7.0, 14.0, 21.0])

    def test_batch_all_zero(self, rng):
        assert np.all(BatchArrivals().sample(5, rng) == 0.0)

    def test_recorded_normalizes_to_zero(self, rng):
        times = RecordedArrivals([100.0, 103.0, 110.0]).sample(3, rng)
        assert np.allclose(times, [0.0, 3.0, 10.0])

    def test_recorded_tiles_beyond_recording(self, rng):
        times = RecordedArrivals([0.0, 2.0]).sample(5, rng)
        assert times.size == 5
        assert np.all(np.diff(times) >= 0)

    def test_recorded_validation(self):
        with pytest.raises(ValueError):
            RecordedArrivals([])


class TestSoloCompletionTime:
    def test_matches_analytic(self, cluster64):
        profile = make_constant_profile(num_maps=64, num_reduces=64, map_s=10.0,
                                        first_shuffle_s=5.0, reduce_s=3.0)
        # single map wave 10 + first shuffle 5 + reduce 3
        assert solo_completion_time(profile, cluster64) == pytest.approx(18.0)

    def test_cache_hits_on_equal_content(self, cluster64):
        clear_solo_cache()
        p1 = make_constant_profile()
        p2 = make_constant_profile()  # distinct object, same content
        t1 = solo_completion_time(p1, cluster64)
        t2 = solo_completion_time(p2, cluster64)
        assert t1 == t2

    def test_cache_distinguishes_different_profiles(self, cluster64, rng):
        """Regression: id()-keyed caching returned stale values after GC."""
        clear_solo_cache()
        times = set()
        for i in range(5):
            profile = make_random_profile(rng, name=f"p{i}", num_maps=10 + i)
            times.add(round(solo_completion_time(profile, cluster64), 6))
        assert len(times) == 5

    def test_cache_keyed_on_cluster(self):
        clear_solo_cache()
        profile = make_constant_profile(num_maps=8, num_reduces=0, map_s=10.0)
        t_small = solo_completion_time(profile, ClusterConfig(4, 4))
        t_big = solo_completion_time(profile, ClusterConfig(8, 8))
        assert t_small == pytest.approx(20.0)
        assert t_big == pytest.approx(10.0)


class TestDeadlineFactorPolicy:
    def test_deadline_within_paper_interval(self, cluster64, rng):
        """Deadlines are uniform in [T_J, df * T_J] relative to submit."""
        profile = make_constant_profile()
        t_j = solo_completion_time(profile, cluster64)
        policy = DeadlineFactorPolicy(3.0, cluster64)
        for _ in range(50):
            deadline = policy.deadline_for(profile, 100.0, rng)
            assert 100.0 + t_j <= deadline <= 100.0 + 3.0 * t_j + 1e-9

    def test_df_one_pins_deadline_to_t_j(self, cluster64, rng):
        profile = make_constant_profile()
        t_j = solo_completion_time(profile, cluster64)
        policy = DeadlineFactorPolicy(1.0, cluster64)
        assert policy.deadline_for(profile, 0.0, rng) == pytest.approx(t_j)

    def test_df_below_one_rejected(self, cluster64):
        with pytest.raises(ValueError, match=">= 1"):
            DeadlineFactorPolicy(0.9, cluster64)

    def test_assign_preserves_jobs(self, cluster64, rng):
        profile = make_constant_profile()
        jobs = [TraceJob(profile, 0.0), TraceJob(profile, 10.0)]
        policy = DeadlineFactorPolicy(2.0, cluster64)
        assigned = policy.assign(jobs, rng)
        assert len(assigned) == 2
        assert all(j.deadline is not None for j in assigned)
        assert [j.submit_time for j in assigned] == [0.0, 10.0]
