"""Cross-simulator consistency properties (SimMR / emulator / Mumak).

Three independent implementations process the same traces; where their
models coincide, so must their outputs.  These properties pin down the
*agreements* — the disagreements (shuffle handling, heartbeat
quantization) are the paper's results and are asserted elsewhere.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ClusterConfig, TraceJob, simulate
from repro.hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from repro.mumak.simulator import MumakSimulator
from repro.schedulers import FIFOScheduler

from conftest import make_constant_profile, make_random_profile


@st.composite
def map_only_traces(draw, max_jobs=4):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=500)))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=50.0))
        num_maps = draw(st.integers(min_value=1, max_value=12))
        jobs.append(TraceJob(make_random_profile(rng, f"j{i}", num_maps, 0), t))
    return jobs


class TestSimMRvsMumak:
    @settings(max_examples=25, deadline=None)
    @given(trace=map_only_traces())
    def test_map_only_jobs_agree_up_to_heartbeats(self, trace):
        """Without reduces there is no shuffle to disagree about: Mumak
        and SimMR differ only by heartbeat quantization."""
        nodes = 8
        simmr = simulate(trace, FIFOScheduler(), ClusterConfig(nodes, nodes))
        heartbeat = 0.05
        mumak = MumakSimulator(num_nodes=nodes, heartbeat_interval=heartbeat).run(trace)
        for i in range(len(trace)):
            a = simmr.jobs[i].completion_time
            b = mumak.jobs[i].completion_time
            # Each wave start may slip by up to one heartbeat; bound by
            # task count (generous: every task slips).
            slack = heartbeat * (trace[i].profile.num_maps + 1) * len(trace)
            assert b == pytest.approx(a, abs=slack + 1e-6)
        assert mumak.makespan >= simmr.makespan - 1e-9

    def test_mumak_never_beats_simmr_with_shuffle(self):
        """With reduces present Mumak's estimate is <= SimMR's (it drops
        shuffle time and nothing else differs in its favour)."""
        rng = np.random.default_rng(0)
        for seed in range(5):
            r = np.random.default_rng(seed)
            profile = make_random_profile(r, "j", 12, 6)
            trace = [TraceJob(profile, 0.0)]
            simmr = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
            mumak = MumakSimulator(num_nodes=8, heartbeat_interval=0.05).run(trace)
            assert mumak.jobs[0].duration <= simmr.jobs[0].duration + 1.0


class TestSimMRvsEmulator:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_noiseless_emulator_brackets_simmr(self, seed):
        """With zero noise and tiny heartbeats the emulator converges on
        the engine's task-level schedule."""
        rng = np.random.default_rng(seed)
        profile = make_random_profile(rng, "j", 10, 4)
        trace = [TraceJob(profile, 0.0)]
        simmr = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        cfg = EmulatorConfig(
            num_nodes=8, heartbeat_interval=0.01,
            node_speed_sigma=0.0, task_jitter_sigma=0.0, seed=0,
        )
        emu = HadoopClusterEmulator(cfg).run(trace)
        # Every emulated start is heartbeat-delayed, never early: the
        # emulator can only be (slightly) slower.
        assert emu.jobs[0].duration >= simmr.jobs[0].duration - 1e-6
        # ... and with 10ms heartbeats the gap is a few percent at most.
        assert emu.jobs[0].duration <= simmr.jobs[0].duration * 1.05 + 1.0


class TestEmulatorInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_per_node_slots_and_completion(self, seed):
        rng = np.random.default_rng(seed)
        trace = [
            TraceJob(make_random_profile(rng, f"j{i}", 8, 3), float(i * 2))
            for i in range(3)
        ]
        cfg = EmulatorConfig(num_nodes=4, heartbeat_interval=1.0, seed=seed)
        result = HadoopClusterEmulator(cfg).run(trace)
        assert all(j.completion_time is not None for j in result.jobs)
        for node_id in range(4):
            for kind, limit in (("map", 1), ("reduce", 1)):
                intervals = [
                    (t.start, t.end)
                    for t in result.tasks
                    if t.kind == kind and t.node_id == node_id
                ]
                events = sorted(
                    [(s, 1) for s, _ in intervals] + [(e, -1) for _, e in intervals],
                    key=lambda x: (x[0], x[1]),
                )
                running = 0
                for _, d in events:
                    running += d
                    assert running <= limit
