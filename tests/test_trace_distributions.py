"""Tests for the duration-distribution family used by Synthetic TraceGen."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.distributions import (
    Constant,
    DurationDistribution,
    Empirical,
    Exponential,
    Gamma,
    LogNormal,
    TruncatedNormal,
    Uniform,
    Weibull,
    from_spec,
)

ALL_DISTS = [
    Constant(5.0),
    Uniform(1.0, 9.0),
    Exponential(4.0),
    LogNormal(2.0, 0.5),
    TruncatedNormal(10.0, 3.0),
    Gamma(4.0, 2.5),
    Weibull(2.0, 7.0),
    Empirical([1.0, 2.0, 3.0, 4.0]),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
class TestCommonBehaviour:
    def test_samples_non_negative(self, dist, rng):
        samples = dist.sample(rng, 500)
        assert samples.shape == (500,)
        assert np.all(samples >= 0)
        assert np.all(np.isfinite(samples))

    def test_sampling_deterministic_under_seed(self, dist):
        a = dist.sample(np.random.default_rng(7), 100)
        b = dist.sample(np.random.default_rng(7), 100)
        assert np.array_equal(a, b)

    def test_empirical_mean_approaches_analytic(self, dist):
        samples = dist.sample(np.random.default_rng(0), 40000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.08)

    def test_spec_round_trip(self, dist):
        rebuilt = from_spec(dist.to_spec())
        assert rebuilt == dist
        a = dist.sample(np.random.default_rng(3), 50)
        b = rebuilt.sample(np.random.default_rng(3), 50)
        assert np.array_equal(a, b)

    def test_repr_contains_params(self, dist):
        assert type(dist).__name__ in repr(dist)


class TestValidation:
    def test_constant_negative(self):
        with pytest.raises(ValueError):
            Constant(-1.0)

    def test_uniform_inverted_range(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 1.0)

    def test_exponential_zero_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_lognormal_bad_sigma(self):
        with pytest.raises(ValueError):
            LogNormal(1.0, 0.0)

    def test_truncnormal_negative_mu(self):
        with pytest.raises(ValueError):
            TruncatedNormal(-5.0, 1.0)

    def test_gamma_bad_shape(self):
        with pytest.raises(ValueError):
            Gamma(0.0, 1.0)

    def test_weibull_bad_scale(self):
        with pytest.raises(ValueError):
            Weibull(1.0, -1.0)

    def test_empirical_empty(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_empirical_negative_values(self):
        with pytest.raises(ValueError):
            Empirical([1.0, -2.0])

    def test_from_spec_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            from_spec({"kind": "zipf"})

    def test_from_spec_missing_kind(self):
        with pytest.raises(ValueError, match="kind"):
            from_spec({"mean": 1.0})


class TestSpecifics:
    def test_constant_is_constant(self, rng):
        assert np.all(Constant(3.0).sample(rng, 10) == 3.0)

    def test_uniform_range(self, rng):
        samples = Uniform(2.0, 4.0).sample(rng, 1000)
        assert samples.min() >= 2.0
        assert samples.max() <= 4.0

    def test_lognormal_scale_converts_units(self, rng):
        """The paper's Facebook fits are in ms; scale=1e-3 yields seconds."""
        ms = LogNormal(9.9511, 1.6764)
        s = LogNormal(9.9511, 1.6764, scale=1e-3)
        assert s.mean() == pytest.approx(ms.mean() / 1000.0)

    def test_lognormal_median(self):
        # Median of LN(mu, sigma) is exp(mu).
        samples = LogNormal(2.0, 0.8).sample(np.random.default_rng(0), 40000)
        assert np.median(samples) == pytest.approx(np.exp(2.0), rel=0.05)

    def test_truncnormal_no_negatives_even_with_wide_sigma(self, rng):
        samples = TruncatedNormal(1.0, 5.0).sample(rng, 5000)
        assert np.all(samples >= 0)

    def test_empirical_resamples_original_values(self, rng):
        values = [1.0, 5.0, 9.0]
        samples = Empirical(values).sample(rng, 200)
        assert set(np.unique(samples)) <= set(values)

    @given(st.floats(min_value=0.5, max_value=50.0), st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_property_weibull_mean_formula(self, scale, shape):
        import math

        dist = Weibull(shape, scale)
        assert dist.mean() == pytest.approx(scale * math.gamma(1 + 1 / shape))
