"""Tests for the six application models and the Facebook workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig
from repro.trace.arrivals import PeriodicArrivals
from repro.trace.deadlines import solo_completion_time
from repro.workloads.apps import (
    APP_NAMES,
    PAPER_FIFO_ACTUALS,
    app_spec,
    make_app_specs,
    sample_executions,
)
from repro.workloads.facebook import (
    FACEBOOK_JOB_BINS,
    FACEBOOK_MAP_LOGNORMAL,
    FACEBOOK_REDUCE_LOGNORMAL,
    FacebookJobSpec,
    facebook_trace_generator,
)
# Alias: pytest would otherwise collect the imported "test*" name as a test.
from repro.workloads.mixes import permuted_deadline_trace
from repro.workloads.mixes import testbed_mix_profiles as mix_profiles


class TestAppSpecs:
    def test_all_six_apps_present(self):
        specs = make_app_specs()
        assert set(specs) == set(APP_NAMES)
        assert len(APP_NAMES) == 6

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_profiles_generate(self, name, rng):
        profile = app_spec(name).make_profile(rng)
        assert profile.name == name
        assert profile.num_maps > 0
        assert profile.num_reduces > 0

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_calibration_within_ten_percent(self, name):
        """Solo FIFO completion on 64x64 slots lands near the paper's
        reported actual times (Figure 5(a) bar labels)."""
        rng = np.random.default_rng(7)
        spec = app_spec(name)
        times = [
            solo_completion_time(spec.make_profile(rng), ClusterConfig(64, 64))
            for _ in range(5)
        ]
        assert np.mean(times) == pytest.approx(PAPER_FIFO_ACTUALS[name], rel=0.10)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            app_spec("PageRank")

    def test_sample_executions_count(self):
        profiles = sample_executions("Sort", 4, seed=0)
        assert len(profiles) == 4
        assert all(p.name == "Sort" for p in profiles)

    def test_sample_executions_differ(self):
        a, b = sample_executions("Sort", 2, seed=0)
        assert not np.array_equal(a.map_durations, b.map_durations)

    def test_dataset_scales_change_task_counts(self):
        profiles = sample_executions(
            "Sort", 3, seed=0, dataset_scales=(0.5, 1.0, 2.0)
        )
        counts = [p.num_maps for p in profiles]
        assert counts[0] < counts[1] < counts[2]

    def test_executions_validation(self):
        with pytest.raises(ValueError):
            sample_executions("Sort", 0)


class TestFacebookWorkload:
    def test_paper_lognormal_parameters(self):
        assert FACEBOOK_MAP_LOGNORMAL == (9.9511, 1.6764)
        assert FACEBOOK_REDUCE_LOGNORMAL == (12.375, 1.6262)

    def test_bins_mostly_tiny_jobs(self):
        small = sum(w for m, _, w in FACEBOOK_JOB_BINS if m <= 2)
        assert small >= 0.5  # the defining Facebook property

    def test_correlated_counts(self, rng):
        """Map and reduce counts come from the same bin: tiny jobs are
        map-only, reduces only appear in the larger bins."""
        spec = FacebookJobSpec()
        valid_pairs = {(m, r) for m, r, _ in FACEBOOK_JOB_BINS}
        for _ in range(200):
            p = spec.make_profile(rng)
            assert (p.num_maps, p.num_reduces) in valid_pairs

    def test_map_durations_follow_fit(self):
        """Median map duration ~ exp(9.9511) ms ~ 21 s."""
        rng = np.random.default_rng(0)
        spec = FacebookJobSpec()
        samples = spec.map_durations.sample(rng, 50000)
        assert np.median(samples) == pytest.approx(np.exp(9.9511) / 1000.0, rel=0.05)

    def test_shuffle_fraction_splits_total(self):
        spec = FacebookJobSpec(shuffle_fraction=0.25)
        total_mean = spec.typical_shuffle.mean() + spec.reduce_durations.mean()
        mu, sigma = FACEBOOK_REDUCE_LOGNORMAL
        expected = np.exp(mu + sigma**2 / 2) / 1000.0
        assert total_mean == pytest.approx(expected, rel=1e-6)

    def test_invalid_shuffle_fraction(self):
        with pytest.raises(ValueError):
            FacebookJobSpec(shuffle_fraction=1.0)

    def test_empty_bins_rejected(self):
        with pytest.raises(ValueError):
            FacebookJobSpec(bins=[])

    def test_generator_produces_trace(self):
        gen = facebook_trace_generator(PeriodicArrivals(10.0), seed=0)
        trace = gen.generate(30)
        assert len(trace) == 30
        assert all(j.profile.name == "Facebook" for j in trace)


class TestMixes:
    def test_testbed_mix_size(self):
        profiles = mix_profiles(3, seed=0)
        assert len(profiles) == 18  # 6 apps x 3 executions
        assert {p.name for p in profiles} == set(APP_NAMES)

    def test_permuted_trace_properties(self, cluster64):
        profiles = mix_profiles(2, seed=0)
        trace = permuted_deadline_trace(profiles, 100.0, 2.0, cluster64, seed=1)
        assert len(trace) == len(profiles)
        submits = [j.submit_time for j in trace]
        assert submits == sorted(submits)
        assert submits[0] == 0.0
        assert all(j.deadline is not None and j.deadline > j.submit_time for j in trace)

    def test_permutation_varies_with_seed(self, cluster64):
        profiles = mix_profiles(2, seed=0)
        t1 = permuted_deadline_trace(profiles, 100.0, 2.0, cluster64, seed=1)
        t2 = permuted_deadline_trace(profiles, 100.0, 2.0, cluster64, seed=2)
        assert [j.profile.name for j in t1] != [j.profile.name for j in t2]
