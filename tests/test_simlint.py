"""The simlint CI gate and analyzer unit tests.

``test_source_tree_is_clean`` is the tentpole: tier-1 pytest fails if
any simulation-invariant violation (see ``docs/linting.md``) lands in
``src/repro``.  The remaining tests pin the analyzer's own behaviour —
exact findings on the deliberately-broken fixture, inline suppression,
config validation, and reporter round-trips.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    default_registry,
    lint_paths,
    lint_source,
    load_baseline,
    partition_findings,
    render_json,
    render_text,
)
from repro.analysis.reporter import parse_json
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "bad_scheduler.py"
XMOD_DIR = REPO_ROOT / "tests" / "fixtures" / "xmod"
CONC_FIXTURE = REPO_ROOT / "tests" / "fixtures" / "racy_service.py"
RES_FIXTURE = REPO_ROOT / "tests" / "fixtures" / "leaky_resources.py"
BASELINE = REPO_ROOT / "scripts" / "lint_baseline.json"

#: Rule ids with a real checker (LINT000 is the docs-only meta rule).
IMPLEMENTED_RULES = {
    "DET001", "DET002", "DET003", "DET004",
    "SIM001", "SIM002", "SIM004", "SIM003",
    "API001", "API002",
}

#: Whole-program rule ids (fire from the CONC/RES dataflow analyses,
#: pinned by their own fixtures rather than bad_scheduler.py).
PROGRAM_RULES = {
    "CONC001", "CONC002", "CONC003", "CONC004",
    "RES001", "RES002", "RES003",
}

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z]+\d+)")


def expected_from_markers(path: Path) -> set[tuple[str, int]]:
    """(rule_id, line) pairs declared by ``# expect: RULE`` markers."""
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for rule_id in _EXPECT_RE.findall(line):
            out.add((rule_id, lineno))
    return out


# --------------------------------------------------------------------- #
# the gate
# --------------------------------------------------------------------- #


class TestCleanTree:
    def test_source_tree_is_clean(self):
        """Zero non-baseline findings, and zero stale baseline entries.

        The committed baseline (scripts/lint_baseline.json) is the
        accepted-debt ledger; anything the tree adds beyond it fails
        here, and so does a ledger entry that no longer fires (pay the
        debt down *and* shrink the ledger in the same change).
        """
        findings = lint_paths([SRC_TREE], root=REPO_ROOT)
        new, _matched, stale = partition_findings(
            findings, load_baseline(BASELINE)
        )
        assert new == [], "\n" + render_text(new)
        assert stale == [], "\nstale baseline entries:\n" + "\n".join(
            e.format() for e in stale
        )

    def test_check_script_passes(self):
        """`make lint` / scripts/check.sh is green on the committed tree."""
        proc = subprocess.run(
            ["bash", str(REPO_ROOT / "scripts" / "check.sh")],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestFixture:
    def test_fixture_reports_exact_rules_and_lines(self):
        expected = expected_from_markers(FIXTURE)
        assert expected, "fixture lost its # expect: markers"
        findings = lint_paths([FIXTURE], root=REPO_ROOT)
        got = {(f.rule_id, f.line) for f in findings}
        assert got == expected
        # Every implemented rule id fires at least once.
        assert {rule for rule, _ in got} == IMPLEMENTED_RULES

    def test_fixture_findings_carry_location_and_hint(self):
        for f in lint_paths([FIXTURE], root=REPO_ROOT):
            assert f.path == "tests/fixtures/bad_scheduler.py"
            assert f.line > 0 and f.col > 0
            assert f.message and f.hint
            info = default_registry.info(f.rule_id)
            assert f.severity is info.severity


# --------------------------------------------------------------------- #
# whole-program rules (CONC001–004 / RES001–003)
# --------------------------------------------------------------------- #


class TestConcFixture:
    """racy_service.py pins the concurrency family: every CONC rule has
    at least one marked true positive and one sanctioned/suppressed
    clean variant right next to it."""

    def test_conc_findings_match_markers(self):
        expected = expected_from_markers(CONC_FIXTURE)
        assert expected, "fixture lost its # expect: markers"
        findings = lint_paths([CONC_FIXTURE], root=REPO_ROOT)
        got = {(f.rule_id, f.line) for f in findings}
        assert got == expected
        assert {rule for rule, _ in got} == {
            "CONC001", "CONC002", "CONC003", "CONC004",
        }

    def test_conc001_message_carries_witness_chain(self):
        findings = lint_paths([CONC_FIXTURE], root=REPO_ROOT)
        drain = [
            f for f in findings if f.rule_id == "CONC001" and "_drain" in f.message
        ]
        assert len(drain) == 1
        # The entry chain names how the racy method becomes concurrent.
        assert "threading.Thread target" in drain[0].message

    def test_conc002_names_the_opposite_site(self):
        findings = lint_paths([CONC_FIXTURE], root=REPO_ROOT)
        order = [f for f in findings if f.rule_id == "CONC002"]
        assert len(order) == 2
        for f in order:
            assert "opposite order" in f.message
            assert "racy_service.py:" in f.message


class TestResFixture:
    """leaky_resources.py pins the resource family the same way."""

    def test_res_findings_match_markers(self):
        expected = expected_from_markers(RES_FIXTURE)
        assert expected, "fixture lost its # expect: markers"
        findings = lint_paths([RES_FIXTURE], root=REPO_ROOT)
        got = {(f.rule_id, f.line) for f in findings}
        assert got == expected
        assert {rule for rule, _ in got} == {"RES001", "RES002", "RES003"}

    def test_res001_names_the_raise_witness(self):
        findings = lint_paths([RES_FIXTURE], root=REPO_ROOT)
        shm = [f for f in findings if f.rule_id == "RES001"]
        assert len(shm) == 1
        # The message points at the statement whose exception leaks.
        assert "exception" in shm[0].message


#: One minimal firing snippet per whole-program rule.  ``{d}`` marks the
#: anchor line: empty → the rule fires there; a disable directive → the
#: same program stays silent.
_PROGRAM_SNIPPETS = {
    "CONC001": (
        "import threading\n"
        "from http.server import BaseHTTPRequestHandler\n"
        "class H(BaseHTTPRequestHandler):\n"
        "    def do_GET(self):\n"
        "        with self._lock:\n"
        "            self.hits += 1\n"
        "    def do_POST(self):\n"
        "        self.hits += 1{d}\n",
        8,
    ),
    "CONC002": (
        "import threading\n"
        "class T:\n"
        "    def __init__(self):\n"
        "        self._a_lock = threading.Lock()\n"
        "        self._b_lock = threading.Lock()\n"
        "    def ab(self):\n"
        "        with self._a_lock:\n"
        "            with self._b_lock:{d}\n"
        "                pass\n"
        "    def ba(self):\n"
        "        with self._b_lock:\n"
        "            with self._a_lock:{d}\n"
        "                pass\n",
        8,
    ),
    "CONC003": (
        "import sqlite3\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._conn = sqlite3.connect(':memory:', check_same_thread=False){d}\n",
        4,
    ),
    "CONC004": (
        "def toggle(state_lock, flag):\n"
        "    state_lock.acquire(){d}\n"
        "    flag.set()\n"
        "    state_lock.release()\n",
        2,
    ),
    "RES001": (
        "from multiprocessing import shared_memory\n"
        "def publish(n):\n"
        "    seg = shared_memory.SharedMemory(create=True, size=n){d}\n"
        "    seg.buf[:1] = b'x'\n"
        "    return seg.name\n",
        3,
    ),
    "RES002": (
        "import sqlite3\n"
        "def query(path):\n"
        "    conn = sqlite3.connect(path){d}\n"
        "    return conn.execute('SELECT 1').fetchone()\n",
        3,
    ),
    "RES003": (
        "import os\n"
        "import tempfile\n"
        "def spill(payload):\n"
        "    fd, path = tempfile.mkstemp(){d}\n"
        "    os.write(fd, payload)\n"
        "    return path\n",
        4,
    ),
}


class TestProgramRuleSuppression:
    """`# simlint: disable=<ID>` on the anchor line silences each of the
    whole-program rules, exactly like the single-file families."""

    @pytest.mark.parametrize("rule_id", sorted(_PROGRAM_SNIPPETS))
    def test_snippet_fires(self, rule_id):
        template, line = _PROGRAM_SNIPPETS[rule_id]
        findings = lint_source(template.format(d=""), path="svc/app.py")
        assert (rule_id, line) in {(f.rule_id, f.line) for f in findings}
        assert {f.rule_id for f in findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(_PROGRAM_SNIPPETS))
    def test_disable_directive_silences(self, rule_id):
        template, _line = _PROGRAM_SNIPPETS[rule_id]
        directive = f"  # simlint: disable={rule_id} -- audited"
        assert lint_source(template.format(d=directive), path="svc/app.py") == []

    @pytest.mark.parametrize("rule_id", sorted(_PROGRAM_SNIPPETS))
    def test_config_disable_silences(self, rule_id):
        template, _line = _PROGRAM_SNIPPETS[rule_id]
        config = LintConfig(disable=frozenset({rule_id}))
        assert lint_source(template.format(d=""), path="svc/app.py", config=config) == []


# --------------------------------------------------------------------- #
# baseline (accepted-findings ledger)
# --------------------------------------------------------------------- #


class TestBaselineCli:
    def test_write_then_compare_is_green(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(FIXTURE), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert "recorded" in capsys.readouterr().out
        # The exact same findings now all match the ledger: exit 0.
        assert main(["lint", str(FIXTURE), "--baseline", str(baseline)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_non_baseline_finding_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 1, "findings": []}\n')
        assert main(["lint", str(FIXTURE), "--baseline", str(baseline)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_stale_entry_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(FIXTURE), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        capsys.readouterr()
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert main([
            "lint", str(clean), "--no-config", "--baseline", str(baseline),
        ]) == 1
        err = capsys.readouterr().err
        assert "stale baseline entry" in err

    def test_write_baseline_requires_path(self, capsys):
        assert main(["lint", str(FIXTURE), "--write-baseline"]) == 2
        assert "requires --baseline" in capsys.readouterr().err

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 99, "findings": []}\n')
        assert main(["lint", str(FIXTURE), "--baseline", str(baseline)]) == 2
        assert "version" in capsys.readouterr().err

    def test_committed_baseline_is_sorted_and_versioned(self):
        payload = json.loads(BASELINE.read_text())
        assert payload["version"] == 1
        keys = [
            (e["path"], e["line"], e["rule_id"]) for e in payload["findings"]
        ]
        assert keys == sorted(keys)


# --------------------------------------------------------------------- #
# inline suppression
# --------------------------------------------------------------------- #
# cross-module rules (DET004 / SIM004 / API002)
# --------------------------------------------------------------------- #


class TestCrossModule:
    """The xmod fixture: sinks in helpers.py, callers in covert_scheduler.py."""

    def test_xmod_findings_match_markers(self):
        expected = set()
        for path in sorted(XMOD_DIR.glob("*.py")):
            expected |= {
                (rule, line, f"tests/fixtures/xmod/{path.name}")
                for rule, line in expected_from_markers(path)
            }
        assert expected, "xmod fixture lost its # expect: markers"
        findings = lint_paths([XMOD_DIR], root=REPO_ROOT)
        got = {(f.rule_id, f.line, f.path) for f in findings}
        assert got == expected
        assert {rule for rule, _, _ in got} == {"DET004", "SIM004", "API002"}

    def test_witness_chain_names_depth_two_raise(self):
        findings = lint_paths([XMOD_DIR], root=REPO_ROOT)
        api = [f for f in findings if f.rule_id == "API002"]
        assert len(api) == 1
        # The two-hop chain to the sink is spelled out for the reader.
        assert "strict_first" in api[0].message
        assert "_pick_first" in api[0].message
        assert "KeyError" in api[0].message

    def test_declared_raises_docstring_waives_api002(self):
        findings = lint_paths([XMOD_DIR], root=REPO_ROOT)
        # choose_next_reduce_task calls the same raising helper but
        # declares it in its docstring: exactly one API002, on the map side.
        api_lines = [f.line for f in findings if f.rule_id == "API002"]
        source = (XMOD_DIR / "covert_scheduler.py").read_text()
        reduce_def = source.splitlines().index(
            "    def choose_next_reduce_task(self, job_queue):"
        ) + 1
        assert all(line < reduce_def for line in api_lines)

    def test_single_file_lint_has_no_cross_module_findings(self):
        """Without helpers.py in the graph there is nothing to resolve."""
        path = XMOD_DIR / "covert_scheduler.py"
        findings = lint_source(
            path.read_text(), path="tests/fixtures/xmod/covert_scheduler.py"
        )
        assert findings == []

    def test_intra_file_indirection_caught_by_lint_source(self):
        """lint_source builds a single-module graph: same-file helpers count."""
        source = (
            "import time\n"
            "from repro.schedulers.base import Scheduler\n"
            "def sneaky():\n"
            "    return time.monotonic()\n"
            "class S(Scheduler):\n"
            "    name = 's'\n"
            "    def choose_next_map_task(self, q):\n"
            "        sneaky()\n"
            "        return None\n"
        )
        findings = lint_source(source, path="plugin.py")
        assert [(f.rule_id, f.line) for f in findings] == [("DET004", 8)]

    def test_sanctioned_sink_seeds_no_taint(self):
        """A suppressed sink line is audited: callers inherit nothing."""
        source = (
            "import time\n"
            "from repro.schedulers.base import Scheduler\n"
            "def audited():\n"
            "    return time.monotonic()  # simlint: disable=DET001 -- metrics\n"
            "class S(Scheduler):\n"
            "    name = 's'\n"
            "    def choose_next_map_task(self, q):\n"
            "        audited()\n"
            "        return None\n"
        )
        assert lint_source(source, path="plugin.py") == []


# --------------------------------------------------------------------- #

VIOLATION = "import time\nt = time.time()  {comment}\n"


class TestSuppression:
    def _lint(self, comment: str):
        # A scheduler-free file is only in DET001 scope via sim paths.
        return lint_source(
            VIOLATION.format(comment=comment), path="core/example.py"
        )

    def test_violation_fires_without_directive(self):
        findings = self._lint("")
        assert [(f.rule_id, f.line) for f in findings] == [("DET001", 2)]

    def test_disable_single_rule(self):
        assert self._lint("# simlint: disable=DET001") == []

    def test_disable_list(self):
        assert self._lint("# simlint: disable=DET002,DET001") == []

    def test_disable_all(self):
        assert self._lint("# simlint: disable=all") == []

    def test_disable_other_rule_does_not_suppress(self):
        findings = self._lint("# simlint: disable=DET002")
        assert [f.rule_id for f in findings] == ["DET001"]

    def test_directive_only_covers_its_line(self):
        source = "import time\n# simlint: disable=DET001\nt = time.time()\n"
        findings = lint_source(source, path="core/example.py")
        assert [f.rule_id for f in findings] == ["DET001"]

    def test_unknown_rule_id_in_directive_reported(self):
        findings = self._lint("# simlint: disable=NOPE123")
        ids = [(f.rule_id, f.line) for f in findings]
        # The typo'd directive suppresses nothing and is itself flagged.
        assert ("LINT000", 2) in ids
        assert ("DET001", 2) in ids

    def test_trailing_justification_prose_is_ignored(self):
        """Prose after the id list must not corrupt the parsed ids."""
        assert self._lint("# simlint: disable=DET001 -- audited: metrics only") == []

    def test_trailing_prose_does_not_flag_phantom_ids(self):
        # Before the regex was anchored to the id list, "audited" parsed
        # as an unknown rule id and produced a spurious LINT000.
        findings = self._lint("# simlint: disable=DET001 audited by perf team")
        assert findings == []

    def test_list_with_spaces_and_prose(self):
        assert self._lint("# simlint: disable=DET001, DET002 -- both audited") == []


# --------------------------------------------------------------------- #
# config
# --------------------------------------------------------------------- #


class TestConfig:
    def test_unknown_rule_id_in_select_rejected(self):
        with pytest.raises(ValueError, match="unknown rule id.*NOPE"):
            LintConfig(select=frozenset({"NOPE"})).validate(default_registry)

    def test_unknown_rule_id_in_disable_rejected(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            lint_source("x = 1\n", config=LintConfig(disable=frozenset({"DET999"})))

    def test_disable_drops_findings(self):
        source = "import time\nt = time.time()\n"
        config = LintConfig(disable=frozenset({"DET001"}))
        assert lint_source(source, path="core/example.py", config=config) == []

    def test_select_narrows_rules(self):
        source = "import random\nimport time\nr = random.random()\nt = time.time()\n"
        config = LintConfig(select=frozenset({"DET002"}))
        findings = lint_source(source, path="core/example.py", config=config)
        assert [f.rule_id for f in findings] == ["DET002"]

    def test_fixture_dir_is_not_test_path(self):
        config = LintConfig()
        assert not config.is_test_path("tests/fixtures/bad_scheduler.py")
        assert config.is_test_path("tests/test_simlint.py")
        assert config.is_test_path("conftest.py")

    def test_from_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.simlint]\ndisable = ["DET003"]\nsim-paths = ["sim/"]\n'
        )
        config = LintConfig.from_pyproject(pyproject)
        assert config.disable == frozenset({"DET003"})
        assert config.is_sim_path("sim/engine.py")
        assert not config.is_sim_path("core/engine.py")

    def test_from_pyproject_rejects_unknown_keys(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.simlint]\nrulez = []\n")
        with pytest.raises(ValueError, match="unknown \\[tool.simlint\\] key"):
            LintConfig.from_pyproject(pyproject)

    def test_repo_pyproject_parses(self):
        config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        config.validate(default_registry)

    def test_repo_pyproject_whitelists_walltime(self):
        config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        assert config.is_timing_whitelisted("src/repro/core/walltime.py")
        assert not config.is_timing_whitelisted("src/repro/core/engine.py")

    def test_from_pyproject_malformed_toml_is_value_error(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.simlint\ndisable = [")
        with pytest.raises(ValueError, match="invalid TOML"):
            LintConfig.from_pyproject(pyproject)

    def test_from_pyproject_unknown_rule_id_rejected_at_validate(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.simlint]\ndisable = ["DET404"]\n')
        config = LintConfig.from_pyproject(pyproject)
        with pytest.raises(ValueError, match="unknown rule id.*DET404"):
            config.validate(default_registry)


# --------------------------------------------------------------------- #
# reporters
# --------------------------------------------------------------------- #


class TestReporters:
    def test_json_roundtrip(self):
        findings = lint_paths([FIXTURE], root=REPO_ROOT)
        assert findings
        assert parse_json(render_json(findings)) == findings

    def test_json_summary_counts(self):
        findings = lint_paths([FIXTURE], root=REPO_ROOT)
        payload = json.loads(render_json(findings))
        assert payload["version"] == 1
        assert payload["summary"]["total"] == len(findings)
        assert payload["summary"]["errors"] + payload["summary"]["warnings"] == len(
            findings
        )

    def test_json_rejects_other_versions(self):
        with pytest.raises(ValueError, match="version"):
            parse_json('{"version": 99, "findings": []}')

    def test_text_mentions_every_finding(self):
        findings = lint_paths([FIXTURE], root=REPO_ROOT)
        text = render_text(findings)
        for f in findings:
            assert f"{f.path}:{f.line}:{f.col}: {f.rule_id}" in text

    def test_clean_text_report(self):
        assert render_text([]) == "simlint: no findings"

    def test_syntax_error_is_a_meta_finding(self):
        findings = lint_source("def broken(:\n")
        assert [f.rule_id for f in findings] == ["LINT000"]
        assert "cannot parse" in findings[0].message


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestCli:
    def test_lint_fixture_exits_1(self, capsys):
        assert main(["lint", str(FIXTURE)]) == 1
        assert "SIM002" in capsys.readouterr().out

    def test_lint_clean_file_exits_0(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert main(["lint", str(clean), "--no-config"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        assert main(["lint", "--format", "json", str(FIXTURE)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule_id"] for f in payload["findings"]} == IMPLEMENTED_RULES

    def test_lint_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--disable", "BOGUS1", str(FIXTURE)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_lint_malformed_config_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "pyproject.toml"
        bad.write_text("[tool.simlint\n")
        assert main(["lint", "--config", str(bad), str(FIXTURE)]) == 2
        assert "invalid TOML" in capsys.readouterr().err

    def test_lint_github_format(self, capsys):
        assert main(["lint", "--format", "github", str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        # One annotation per finding, severity mapped to the command name.
        assert "::error file=tests/fixtures/bad_scheduler.py,line=" in out
        assert "::warning file=tests/fixtures/bad_scheduler.py,line=" in out
        assert ",title=DET004::" in out
        # The summary line stays greppable plain text.
        assert "finding(s)" in out

    def test_github_format_escapes_newlines_and_percent(self):
        from repro.analysis import render_github
        from repro.analysis.findings import Finding, Severity

        f = Finding(
            path="a.py", line=1, col=1, rule_id="DET001",
            severity=Severity.ERROR, message="100% bad\nreally", hint="",
        )
        out = render_github([f])
        assert "100%25 bad%0Areally" in out

    def test_lint_disable_filters(self, capsys):
        assert main(["lint", "--select", "API001", str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        assert "API001" in out and "DET001" not in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in sorted(IMPLEMENTED_RULES | PROGRAM_RULES | {"LINT000"}):
            assert rule_id in out

    def test_module_entry_point(self):
        """`python -m repro lint` (the documented invocation) works."""
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "lint", "src/repro",
                "--baseline", "scripts/lint_baseline.json",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


# --------------------------------------------------------------------- #
# docs stay in sync
# --------------------------------------------------------------------- #


class TestDocs:
    def test_every_rule_documented_in_linting_md(self):
        doc = (REPO_ROOT / "docs" / "linting.md").read_text()
        for info in default_registry:
            assert info.rule_id in doc, f"{info.rule_id} missing from docs/linting.md"

    def test_extending_md_links_determinism_contract(self):
        doc = (REPO_ROOT / "docs" / "extending.md").read_text()
        assert "linting.md" in doc
