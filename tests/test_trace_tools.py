"""Tests for trace compaction, concatenation and summaries."""

from __future__ import annotations

import pytest

from repro.core import TraceJob
from repro.trace.tools import compact_trace, concatenate_traces, trace_summary

from conftest import make_constant_profile


@pytest.fixture
def profile():
    return make_constant_profile(num_maps=4, num_reduces=2)


class TestCompactTrace:
    def test_clamps_large_gaps(self, profile):
        trace = [
            TraceJob(profile, 0.0),
            TraceJob(profile, 10.0),
            TraceJob(profile, 100000.0),  # six-month-style inactivity gap
        ]
        compact = compact_trace(trace, max_gap=60.0)
        assert [j.submit_time for j in compact] == [0.0, 10.0, 70.0]

    def test_small_gaps_preserved(self, profile):
        trace = [TraceJob(profile, 0.0), TraceJob(profile, 5.0)]
        compact = compact_trace(trace, max_gap=60.0)
        assert [j.submit_time for j in compact] == [0.0, 5.0]

    def test_zero_gap_batches_everything(self, profile):
        trace = [TraceJob(profile, t) for t in (0.0, 50.0, 5000.0)]
        compact = compact_trace(trace, max_gap=0.0)
        assert all(j.submit_time == 0.0 for j in compact)

    def test_relative_deadlines_preserved(self, profile):
        trace = [TraceJob(profile, 100000.0, deadline=100050.0)]
        compact = compact_trace([TraceJob(profile, 0.0)] + trace, max_gap=10.0)
        job = compact[1]
        assert job.deadline - job.submit_time == pytest.approx(50.0)

    def test_sorts_by_submission(self, profile):
        trace = [TraceJob(profile, 10.0), TraceJob(profile, 0.0)]
        compact = compact_trace(trace, max_gap=100.0)
        assert [j.submit_time for j in compact] == [0.0, 10.0]

    def test_validation(self, profile):
        with pytest.raises(ValueError):
            compact_trace([TraceJob(profile, 0.0)], max_gap=-1.0)

    def test_empty(self):
        assert compact_trace([]) == []


class TestConcatenateTraces:
    def test_segments_follow_each_other(self, profile):
        seg = [TraceJob(profile, 0.0), TraceJob(profile, 10.0)]
        combined = concatenate_traces([seg, seg], gap=5.0)
        assert [j.submit_time for j in combined] == [0.0, 10.0, 15.0, 25.0]

    def test_segment_internal_offsets_normalized(self, profile):
        seg = [TraceJob(profile, 1000.0), TraceJob(profile, 1010.0)]
        combined = concatenate_traces([seg], gap=0.0)
        assert [j.submit_time for j in combined] == [0.0, 10.0]

    def test_deadlines_shift_with_jobs(self, profile):
        seg = [TraceJob(profile, 100.0, deadline=150.0)]
        combined = concatenate_traces([seg, seg], gap=7.0)
        for job in combined:
            assert job.deadline - job.submit_time == pytest.approx(50.0)

    def test_empty_segments_skipped(self, profile):
        combined = concatenate_traces([[], [TraceJob(profile, 0.0)], []])
        assert len(combined) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            concatenate_traces([], gap=-1.0)


class TestTraceSummary:
    def test_counts(self, profile):
        other = make_constant_profile(name="other", num_maps=2, num_reduces=0)
        trace = [
            TraceJob(profile, 0.0, deadline=100.0),
            TraceJob(profile, 10.0),
            TraceJob(other, 30.0),
        ]
        summary = trace_summary(trace)
        assert summary.num_jobs == 3
        assert summary.span_seconds == pytest.approx(30.0)
        assert summary.total_maps == 4 + 4 + 2
        assert summary.total_reduces == 4
        assert summary.jobs_with_deadlines == 1
        assert summary.per_application == {"const": 2, "other": 1}
        assert summary.mean_interarrival == pytest.approx(15.0)

    def test_offered_load(self, profile):
        trace = [TraceJob(profile, 0.0), TraceJob(profile, 100.0)]
        summary = trace_summary(trace)
        load = summary.offered_load(total_slots=10)
        assert load == pytest.approx(summary.total_task_seconds / (10 * 100.0))
        with pytest.raises(ValueError):
            summary.offered_load(0)

    def test_str_mentions_apps(self, profile):
        text = str(trace_summary([TraceJob(profile, 0.0)]))
        assert "const" in text

    def test_empty_trace(self):
        summary = trace_summary([])
        assert summary.num_jobs == 0
        assert summary.mean_interarrival == 0.0
