"""Tests of the paper-reproduction experiments (small configurations).

Each test runs a reduced version of an experiment and checks the *shape*
the paper reports — the full-size runs live in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_allocation_sweep,
    run_shuffle_ablation,
    run_slowstart_ablation,
)
from repro.experiments.accuracy import run_accuracy
from repro.experiments.common import format_table, relative_error
from repro.experiments.distributions import run_fig3_cdfs, run_table1_kl
from repro.experiments.performance import make_performance_trace, run_performance
from repro.experiments.progress import run_progress
from repro.experiments.schedulers_facebook import run_deadline_comparison_facebook
from repro.experiments.schedulers_real import run_deadline_comparison_real


class TestCommon:
    def test_relative_error(self):
        assert relative_error(90.0, 100.0) == pytest.approx(10.0)
        assert relative_error(110.0, 100.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123}], title="T")
        assert "T" in text
        assert "0.12" in text
        assert format_table([]) == "(no rows)"


class TestProgress:
    def test_figure1_wave_structure(self):
        r = run_progress(128, 128)
        assert r.map_waves == 2
        assert r.reduce_waves == 2

    def test_figure2_wave_structure(self):
        r = run_progress(64, 64)
        assert r.map_waves == 4
        assert r.reduce_waves == 4

    def test_fewer_slots_longer_makespan(self):
        assert run_progress(64, 64).makespan > run_progress(128, 128).makespan

    def test_first_shuffle_overlaps_map_stage(self):
        r = run_progress(128, 128)
        first_shuffle_start = min(s for s, _ in r.shuffle_intervals)
        assert first_shuffle_start < r.map_stage_end
        # ... but no shuffle completes before the map stage does.
        assert min(e for _, e in r.shuffle_intervals) >= r.map_stage_end

    def test_series_counts_bounded_by_slots(self):
        r = run_progress(128, 128)
        for row in r.series():
            assert row["map_tasks"] <= 128
            assert row["shuffle_tasks"] + row["reduce_tasks"] <= 128

    def test_rows_and_str(self):
        r = run_progress(128, 128)
        assert len(r.rows()) > 10
        assert "WordCount" in str(r)


class TestDistributions:
    def test_fig3_cdfs_nearly_identical(self):
        r = run_fig3_cdfs()
        # Same application under different allocations: KS distance small
        # for every phase (the Figure 3 visual).
        for phase, ks in r.ks.items():
            assert ks < 0.25, f"{phase} KS {ks}"
        assert len(r.rows()) == 15

    def test_table1_same_app_below_cross_app_average(self):
        r = run_table1_kl(executions=3, seed=1)
        same_avgs = [
            avg for phases in r.same_app.values() for (_, avg, _) in phases.values()
        ]
        cross_avgs = [avg for (_, avg, _) in r.cross_app.values()]
        assert max(same_avgs) < min(cross_avgs)
        assert len(r.rows()) == 7  # 6 apps + cross-app row

    def test_table1_validation(self):
        with pytest.raises(ValueError):
            run_table1_kl(executions=1)


class TestAccuracy:
    def test_fifo_panel_shape(self):
        r = run_accuracy("FIFO", executions_per_app=1, seed=3)
        avg, mx = r.simmr_errors()
        assert avg < 6.0   # paper: 2.7%
        assert mx < 10.0   # paper: 6.6%
        mavg, _ = r.mumak_errors()
        assert mavg > 3 * avg  # Mumak is far worse (paper: 37% vs 2.7%)
        assert r.mumak_underestimates()

    def test_minedf_panel_shape(self):
        r = run_accuracy("MinEDF", executions_per_app=1, seed=4)
        avg, mx = r.simmr_errors()
        assert avg < 6.0
        assert mx < 12.0
        assert r.mumak is None

    def test_maxedf_panel_shape(self):
        r = run_accuracy("MaxEDF", executions_per_app=1, seed=5)
        avg, mx = r.simmr_errors()
        assert avg < 6.0
        assert mx < 12.0

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            run_accuracy("LIFO")


class TestPerformance:
    def test_simmr_faster_than_mumak(self):
        r = run_performance(job_counts=(20, 40), mean_interarrival=100.0)
        assert all(p.speedup > 1.0 for p in r.points)
        assert r.points[0].num_jobs == 20

    def test_trace_generation(self):
        trace = make_performance_trace(30, seed=0)
        assert len(trace) == 30
        submits = [j.submit_time for j in trace]
        assert submits == sorted(submits)

    def test_events_per_second_positive(self):
        r = run_performance(job_counts=(20,))
        assert r.peak_events_per_second() > 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            run_performance(job_counts=())


class TestDeadlineSweeps:
    def test_real_workload_shape(self):
        r = run_deadline_comparison_real(
            deadline_factors=(1.0, 3.0),
            mean_interarrivals=(10.0, 1000.0, 100000.0),
            runs=3,
            executions_per_app=1,
        )
        # Metric decreases as arrivals spread out.
        for df in (1.0, 3.0):
            series = r.series(df, "MinEDF")
            assert series[0][1] >= series[-1][1]
        # At a relaxed deadline factor MinEDF is no worse than MaxEDF.
        assert r.minedf_wins(3.0, tolerance=1.0)
        assert len(r.rows()) == 6

    def test_df_one_policies_nearly_coincide(self):
        r = run_deadline_comparison_real(
            deadline_factors=(1.0,),
            mean_interarrivals=(100.0,),
            runs=4,
            executions_per_app=1,
        )
        cell = r.cells[(1.0, 100.0)]
        # df=1 -> minimal allocation == maximal allocation (paper Fig 7a);
        # allow small slack for model-rounding effects.
        assert cell["MinEDF"] == pytest.approx(cell["MaxEDF"], rel=0.35, abs=2.0)

    def test_facebook_workload_shape(self):
        r = run_deadline_comparison_facebook(
            deadline_factors=(2.0,),
            mean_interarrivals=(10.0, 100000.0),
            runs=3,
            jobs_per_trace=30,
        )
        assert r.minedf_wins(2.0, tolerance=1.0)
        assert r.workload == "synthetic Facebook"


class TestAblations:
    def test_shuffle_ablation_increases_error(self):
        r = run_shuffle_ablation(seed=0)
        rows = r.rows()
        assert len(rows) == 6
        # Stripping the shuffle must hurt accuracy overall (it is the
        # Mumak failure mode isolated inside SimMR's engine).
        with_sh = np.mean([row["with_shuffle_err_pct"] for row in rows])
        without = np.mean([row["without_shuffle_err_pct"] for row in rows])
        assert without > 2 * with_sh

    def test_slowstart_sweep_shape(self):
        r = run_slowstart_ablation(thresholds=(0.0, 0.5, 1.0))
        rows = r.rows()
        assert len(rows) == 3
        # Solo completion is never faster with a later reduce start.
        solos = [row["solo_duration_s"] for row in rows]
        assert solos[0] <= solos[-1] + 1e-6

    def test_allocation_sweep_monotone(self):
        r = run_allocation_sweep()
        assert r.monotone_nonincreasing()
        assert len(r.rows()) == 4
