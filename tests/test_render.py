"""Tests for the terminal plot rendering."""

from __future__ import annotations

import pytest

from repro.render import bar_chart, line_plot, sparkline


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        text = line_plot(
            {"a": [(1.0, 1.0), (2.0, 2.0)], "b": [(1.0, 2.0), (2.0, 1.0)]},
            title="T",
        )
        assert "T" in text
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_log_x_axis(self):
        text = line_plot(
            {"s": [(1.0, 0.0), (10.0, 1.0), (100.0, 2.0), (1000.0, 3.0)]},
            logx=True,
            xlabel="load",
        )
        assert "(log scale)" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="log-scale"):
            line_plot({"s": [(0.0, 1.0)]}, logx=True)

    def test_extremes_placed_at_corners(self):
        text = line_plot({"s": [(0.0, 0.0), (1.0, 1.0)]}, width=20, height=6)
        rows = [ln for ln in text.splitlines() if "|" in ln]
        assert rows[0].rstrip().endswith("o")  # max lands top-right
        assert rows[-1].split("|")[1][0] == "o"  # min lands bottom-left

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"s": []})
        with pytest.raises(ValueError):
            line_plot({"s": [(0, 0)]}, width=2)

    def test_flat_series_renders(self):
        text = line_plot({"s": [(0.0, 5.0), (1.0, 5.0)]})
        assert "o" in text


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        line_a, line_b = text.splitlines()
        assert line_a.count("#") == 20
        assert line_b.count("#") == 10

    def test_reference_marker(self):
        text = bar_chart([("x", 50.0)], width=20, reference=100.0)
        assert "|" in text
        assert "marks" in text

    def test_title(self):
        assert bar_chart([("a", 1.0)], title="Accuracy").startswith("Accuracy")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])

    def test_zero_values(self):
        text = bar_chart([("a", 0.0)])
        assert "#" not in text


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert line[0] == " "
        assert line[-1] == "█"
        assert len(line) == 5

    def test_constant(self):
        assert len(sparkline([5.0, 5.0])) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestLogYAxis:
    def test_logy_labels_in_original_units(self):
        from repro.render import line_plot

        text = line_plot(
            {"s": [(0.0, 1.0), (1.0, 100.0), (2.0, 10000.0)]}, logy=True
        )
        # Axis labels come back in data units, not exponents.
        assert "1.0e+04" in text or "10000" in text
