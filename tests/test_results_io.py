"""Tests for output-log serialization (JSON + CSV) and the Rumen loader."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, TraceJob, simulate
from repro.core.results_io import (
    jobs_to_csv,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.mumak import dumps_rumen, loads_rumen
from repro.schedulers import FIFOScheduler

from conftest import make_constant_profile


@pytest.fixture
def result():
    profile = make_constant_profile(num_maps=4, num_reduces=2)
    trace = [TraceJob(profile, 0.0, deadline=100.0), TraceJob(profile, 5.0)]
    return simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))


class TestResultJSON:
    def test_round_trip(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.scheduler_name == result.scheduler_name
        assert rebuilt.makespan == result.makespan
        assert rebuilt.completion_times() == result.completion_times()
        assert len(rebuilt.task_records) == len(result.task_records)
        assert rebuilt.relative_deadline_exceeded() == pytest.approx(
            result.relative_deadline_exceeded()
        )

    def test_task_records_preserved(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        orig = result.task_records_for(0, "reduce")[0]
        back = rebuilt.task_records_for(0, "reduce")[0]
        assert back.start == orig.start
        assert back.shuffle_end == orig.shuffle_end
        assert back.first_wave == orig.first_wave

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "out.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.completion_times() == result.completion_times()

    def test_round_trip_is_lossless(self, result):
        """Every field survives — including the execution metadata
        (events_processed, wall_clock_seconds, event_digest) that a
        cache restore depends on."""
        result.event_digest = "ab" * 16
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.events_processed == result.events_processed
        assert rebuilt.wall_clock_seconds == result.wall_clock_seconds
        assert rebuilt.event_digest == result.event_digest
        assert rebuilt == result

    def test_round_trip_fixpoint(self, result):
        """Serializing a deserialized document reproduces it exactly."""
        doc = result_to_dict(result)
        assert result_to_dict(result_from_dict(doc)) == doc

    def test_version_checked(self, result):
        doc = result_to_dict(result)
        doc["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            result_from_dict(doc)

    def test_reads_v1_documents(self, result):
        """Pre-event-digest files (format v1) still load."""
        doc = result_to_dict(result)
        doc["format_version"] = 1
        del doc["event_digest"]
        rebuilt = result_from_dict(doc)
        assert rebuilt.event_digest is None
        assert rebuilt.makespan == result.makespan


class TestCSV:
    def test_header_and_rows(self, result):
        csv_text = jobs_to_csv(result)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("job_id,name,submit_time")
        assert len(lines) == 1 + len(result.jobs)
        assert "const" in lines[1]

    def test_deadline_column(self, result):
        csv_text = jobs_to_csv(result)
        first_row = csv_text.strip().splitlines()[1].split(",")
        assert first_row[7] == "100.0"  # deadline
        assert first_row[8] in ("True", "False")  # met_deadline


class TestRumenLoader:
    def test_round_trip(self):
        docs = [{"jobID": "job_1", "mapTasks": []}, {"jobID": "job_2", "mapTasks": []}]
        text = dumps_rumen(docs)
        assert loads_rumen(text) == docs

    def test_blank_lines_skipped(self):
        assert loads_rumen("\n\n{}\n\n") == [{}]

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 2"):
            loads_rumen('{}\n{"broken": \n')
