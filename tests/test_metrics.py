"""Tests for the derived simulation metrics (utilization, delays, ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, TraceJob, simulate
from repro.core.metrics import (
    concurrency_series,
    queueing_delays,
    slot_seconds,
    stage_breakdown,
    utilization,
)
from repro.schedulers import FIFOScheduler

from conftest import make_constant_profile


@pytest.fixture
def run():
    """One fully-packed run: 8 maps of 10s on 4 slots + 4 reduces."""
    profile = make_constant_profile(
        num_maps=8, num_reduces=4, map_s=10.0, first_shuffle_s=5.0, reduce_s=3.0
    )
    cluster = ClusterConfig(4, 4)
    return simulate([TraceJob(profile, 0.0)], FIFOScheduler(), cluster), cluster, profile


class TestSlotSeconds:
    def test_map_slot_seconds(self, run):
        result, _, _ = run
        assert slot_seconds(result, "map") == pytest.approx(80.0)

    def test_total_includes_filler_occupation(self, run):
        result, _, _ = run
        # Reduce slots are held from dispatch (during the map stage)
        # through shuffle and reduce — more than shuffle+reduce durations.
        assert slot_seconds(result, "reduce") > 4 * (5.0 + 3.0)

    def test_all_kinds(self, run):
        result, _, _ = run
        total = slot_seconds(result)
        assert total == pytest.approx(
            slot_seconds(result, "map") + slot_seconds(result, "reduce")
        )


class TestUtilization:
    def test_map_utilization(self, run):
        result, cluster, _ = run
        report = utilization(result, cluster)
        # 80 map-slot-seconds / (4 slots * 28s makespan)
        assert report.map_utilization == pytest.approx(80.0 / (4 * result.makespan))
        assert 0.0 < report.reduce_utilization <= 1.0
        assert 0.0 < report.overall <= 1.0

    def test_requires_records(self, run):
        _, cluster, profile = run
        bare = simulate(
            [TraceJob(profile, 0.0)], FIFOScheduler(), cluster, record_tasks=False
        )
        with pytest.raises(ValueError, match="record_tasks"):
            utilization(bare, cluster)

    def test_empty_run(self):
        result = simulate([], FIFOScheduler(), ClusterConfig(2, 2))
        with pytest.raises(ValueError):
            utilization(result, ClusterConfig(2, 2))


class TestQueueingDelays:
    def test_first_job_starts_immediately(self, run):
        result, _, _ = run
        assert queueing_delays(result)[0] == pytest.approx(0.0)

    def test_queued_job_waits(self):
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        trace = [TraceJob(profile, 0.0), TraceJob(profile, 0.0)]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))
        delays = queueing_delays(result)
        assert delays[0] == pytest.approx(0.0)
        assert delays[1] == pytest.approx(10.0)


class TestStageBreakdown:
    def test_decomposition(self, run):
        result, _, _ = run
        breakdown = stage_breakdown(result, 0)
        assert breakdown["map"] == pytest.approx(80.0)
        assert breakdown["reduce"] == pytest.approx(4 * 3.0)
        assert breakdown["shuffle"] > 0

    def test_unknown_job(self, run):
        result, _, _ = run
        with pytest.raises(KeyError):
            stage_breakdown(result, 99)


class TestConcurrencySeries:
    def test_peaks_at_slot_count(self, run):
        result, cluster, _ = run
        _, running = concurrency_series(result, "map", points=200)
        assert running.max() == cluster.map_slots
        assert running.min() == 0

    def test_job_filter(self, run):
        result, _, _ = run
        times, running = concurrency_series(result, "map", points=50, job_id=0)
        assert running.sum() > 0
        _, none = concurrency_series(result, "map", points=50, job_id=42)
        assert none.sum() == 0

    def test_validation(self, run):
        result, _, _ = run
        with pytest.raises(ValueError):
            concurrency_series(result, "shuffle")
        with pytest.raises(ValueError):
            concurrency_series(result, "map", points=1)
