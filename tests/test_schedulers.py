"""Tests for the scheduling policies (FIFO, EDF family, Fair, Capacity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, Job, TraceJob, simulate
from repro.schedulers import (
    CapacityScheduler,
    CappedFIFOScheduler,
    FairScheduler,
    FIFOScheduler,
    MaxEDFScheduler,
    MinEDFScheduler,
    make_scheduler,
)

from conftest import make_constant_profile


def make_jobs(*specs) -> list[Job]:
    """Jobs from (submit_time, deadline) pairs."""
    profile = make_constant_profile()
    return [
        Job(i, TraceJob(profile, submit, deadline)) for i, (submit, deadline) in enumerate(specs)
    ]


class TestFIFO:
    def test_picks_earliest_submission(self):
        jobs = make_jobs((5.0, None), (1.0, None), (3.0, None))
        sched = FIFOScheduler()
        assert sched.choose_next_map_task(jobs).job_id == 1
        assert sched.choose_next_reduce_task(jobs).job_id == 1

    def test_tie_breaks_by_job_id(self):
        jobs = make_jobs((2.0, None), (2.0, None))
        assert FIFOScheduler().choose_next_map_task(jobs).job_id == 0

    def test_empty_queue(self):
        sched = FIFOScheduler()
        assert sched.choose_next_map_task([]) is None
        assert sched.choose_next_reduce_task([]) is None

    def test_priority_key_matches_choice(self):
        jobs = make_jobs((5.0, None), (1.0, None))
        sched = FIFOScheduler()
        chosen = sched.choose_next_map_task(jobs)
        assert min(jobs, key=sched.priority_key) is chosen


class TestMaxEDF:
    def test_picks_earliest_deadline(self):
        jobs = make_jobs((0.0, 100.0), (1.0, 50.0), (2.0, 75.0))
        assert MaxEDFScheduler().choose_next_map_task(jobs).job_id == 1

    def test_no_deadline_sorts_last(self):
        jobs = make_jobs((0.0, None), (5.0, 100.0))
        assert MaxEDFScheduler().choose_next_map_task(jobs).job_id == 1

    def test_deadline_tie_breaks_by_submission(self):
        jobs = make_jobs((3.0, 100.0), (1.0, 100.0))
        assert MaxEDFScheduler().choose_next_map_task(jobs).job_id == 1

    def test_no_slot_caps_assigned(self, cluster64):
        job = make_jobs((0.0, 100.0))[0]
        MaxEDFScheduler().on_job_arrival(job, 0.0, cluster64)
        assert job.wanted_map_slots is None
        assert job.wanted_reduce_slots is None


class TestMinEDF:
    def test_assigns_slot_demands_on_arrival(self, cluster64):
        profile = make_constant_profile(num_maps=64, num_reduces=32)
        job = Job(0, TraceJob(profile, 0.0, deadline=1000.0))
        MinEDFScheduler().on_job_arrival(job, 0.0, cluster64)
        assert job.wanted_map_slots is not None and 1 <= job.wanted_map_slots <= 64
        assert job.wanted_reduce_slots is not None and 1 <= job.wanted_reduce_slots <= 32

    def test_tight_deadline_wants_more_slots(self, cluster64):
        profile = make_constant_profile(num_maps=64, num_reduces=32)
        tight = Job(0, TraceJob(profile, 0.0, deadline=100.0))
        loose = Job(1, TraceJob(profile, 0.0, deadline=2000.0))
        sched = MinEDFScheduler()
        sched.on_job_arrival(tight, 0.0, cluster64)
        sched.on_job_arrival(loose, 0.0, cluster64)
        assert tight.wanted_map_slots >= loose.wanted_map_slots
        assert tight.wanted_reduce_slots >= loose.wanted_reduce_slots

    def test_no_deadline_means_uncapped(self, cluster64):
        job = make_jobs((0.0, None))[0]
        MinEDFScheduler().on_job_arrival(job, 0.0, cluster64)
        assert job.wanted_map_slots is None

    def test_already_late_job_uncapped(self, cluster64):
        job = make_jobs((0.0, 10.0))[0]
        MinEDFScheduler().on_job_arrival(job, 50.0, cluster64)
        assert job.wanted_map_slots is None

    def test_engine_enforces_caps(self):
        """A MinEDF job with a loose deadline never exceeds its demand."""
        profile = make_constant_profile(num_maps=32, num_reduces=8, map_s=10.0)
        t_solo = simulate(
            [TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(32, 8)
        ).makespan
        trace = [TraceJob(profile, 0.0, deadline=t_solo * 4)]
        result = simulate(trace, MinEDFScheduler(), ClusterConfig(32, 8))
        # Loose deadline -> fewer map slots -> more waves of running maps.
        max_concurrent = 0
        events = []
        for r in result.task_records:
            if r.kind == "map":
                events += [(r.start, 1), (r.end, -1)]
        events.sort(key=lambda e: (e[0], e[1]))
        running = 0
        for _, d in events:
            running += d
            max_concurrent = max(max_concurrent, running)
        assert max_concurrent < 32
        # ... and the deadline is still met.
        assert result.jobs[0].completion_time <= trace[0].deadline

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="unknown bound"):
            from repro.models.aria import model_coefficients

            model_coefficients(make_constant_profile(), bound="bogus")


class TestCappedFIFO:
    def test_caps_assigned(self, cluster64):
        job = make_jobs((0.0, None))[0]
        CappedFIFOScheduler(16, 8).on_job_arrival(job, 0.0, cluster64)
        assert job.wanted_map_slots == 16
        assert job.wanted_reduce_slots == 8

    def test_engine_respects_requested_allocation(self):
        profile = make_constant_profile(num_maps=16, num_reduces=0, map_s=10.0)
        result = simulate(
            [TraceJob(profile, 0.0)], CappedFIFOScheduler(4, 4), ClusterConfig(64, 64)
        )
        # 16 maps on 4 allowed slots -> 4 waves of 10s.
        assert result.jobs[0].completion_time == pytest.approx(40.0)

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            CappedFIFOScheduler(0, 4)

    def test_name_includes_caps(self):
        assert "16" in CappedFIFOScheduler(16, 8).name


class TestFair:
    def test_prefers_job_with_fewer_running_tasks(self):
        jobs = make_jobs((0.0, None), (1.0, None))
        jobs[0].maps_dispatched = 5  # 5 running maps
        sched = FairScheduler(pool_of=lambda j: str(j.job_id))
        assert sched.choose_next_map_task(jobs).job_id == 1

    def test_weighted_pools(self):
        jobs = make_jobs((0.0, None), (1.0, None))
        jobs[0].maps_dispatched = 4
        jobs[1].maps_dispatched = 1
        # Pool "0" has weight 4: deficiency 4/4=1 equals pool "1" 1/1=1;
        # tie falls through to per-job running counts -> job 1.
        sched = FairScheduler(pool_of=lambda j: str(j.job_id), weights={"0": 4.0})
        assert sched.choose_next_map_task(jobs).job_id == 1

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            FairScheduler(weights={"p": 0.0})

    def test_fair_splits_cluster_between_jobs(self):
        profile = make_constant_profile(num_maps=40, num_reduces=0, map_s=10.0)
        trace = [TraceJob(profile, 0.0), TraceJob(profile, 0.0)]
        result = simulate(
            trace,
            FairScheduler(pool_of=lambda j: str(j.job_id)),
            ClusterConfig(8, 8),
        )
        # Both jobs progress concurrently: completion times are close,
        # unlike FIFO where job 0 finishes in half the total time.
        fifo = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        fair_gap = abs(result.jobs[0].completion_time - result.jobs[1].completion_time)
        fifo_gap = abs(fifo.jobs[0].completion_time - fifo.jobs[1].completion_time)
        assert fair_gap < fifo_gap


class TestFairPreemption:
    """HFS-style preemption: kills restore starved pools to their share."""

    def test_name_marks_variant(self):
        assert FairScheduler(preemptive=True).name == "Fair+P"
        assert FairScheduler().name == "Fair"

    def test_plain_fair_never_requests_kills(self):
        jobs = make_jobs((0.0, None), (1.0, None))
        jobs[0].maps_dispatched = 8
        sched = FairScheduler(pool_of=lambda j: str(j.job_id))
        assert (
            sched.preemption_requests(jobs[1], [jobs[0]], ClusterConfig(8, 8), 0, 8)
            == []
        )

    def test_restores_arrivals_pool_to_fair_share(self):
        """A hog holding all 8 map slots yields the arrival's half share."""
        jobs = make_jobs((0.0, None), (1.0, None))
        jobs[0].maps_dispatched = 8
        sched = FairScheduler(pool_of=lambda j: str(j.job_id), preemptive=True)
        reqs = sched.preemption_requests(jobs[1], [jobs[0]], ClusterConfig(8, 8), 0, 8)
        assert reqs == [(jobs[0], "map", 4)]

    def test_free_slots_count_against_the_deficit(self):
        jobs = make_jobs((0.0, None), (1.0, None))
        jobs[0].maps_dispatched = 4
        sched = FairScheduler(pool_of=lambda j: str(j.job_id), preemptive=True)
        assert (
            sched.preemption_requests(jobs[1], [jobs[0]], ClusterConfig(8, 8), 4, 8)
            == []
        )

    def test_never_drives_victim_pool_below_its_share(self):
        """Three equal pools on 8 slots: each is entitled to 2; the kills
        stop once the victim pool is down to its own entitlement."""
        jobs = make_jobs((0.0, None), (1.0, None), (2.0, None))
        jobs[0].maps_dispatched = 4
        jobs[1].maps_dispatched = 4
        sched = FairScheduler(pool_of=lambda j: str(j.job_id), preemptive=True)
        reqs = sched.preemption_requests(
            jobs[2], [jobs[0], jobs[1]], ClusterConfig(8, 8), 0, 8
        )
        # Later-submitted victim yields first; both stay at >= their share.
        assert reqs == [(jobs[1], "map", 2)]

    def test_weights_shift_entitlements(self):
        jobs = make_jobs((0.0, None), (1.0, None))
        jobs[0].maps_dispatched = 8
        sched = FairScheduler(
            pool_of=lambda j: str(j.job_id), weights={"1": 3.0}, preemptive=True
        )
        reqs = sched.preemption_requests(jobs[1], [jobs[0]], ClusterConfig(8, 8), 0, 8)
        assert reqs == [(jobs[0], "map", 6)]  # floor(8 * 3/4)

    def test_end_to_end_kills_restore_share(self):
        """Engine-level: the starved pool reaches its share immediately,
        paying the hog with rerun work (Hadoop kill semantics)."""
        hog = make_constant_profile(name="hog", num_maps=40, num_reduces=0, map_s=10.0)
        small = make_constant_profile(name="small", num_maps=8, num_reduces=0, map_s=10.0)
        trace = [TraceJob(hog, 0.0), TraceJob(small, 5.0)]
        result = simulate(
            trace,
            FairScheduler(preemptive=True),
            ClusterConfig(8, 8),
            preemption=True,
        )
        killed = [r for r in result.task_records if r.killed]
        assert len(killed) == 4  # half the cluster, the arrival's share
        assert all(r.job_id == 0 for r in killed)
        # Two 4-wide waves from t=5 on its half share.
        assert result.jobs[1].completion_time == 25.0
        # Without the flag the hook is a no-op and the arrival waits.
        plain = simulate(
            trace, FairScheduler(), ClusterConfig(8, 8), preemption=True
        )
        assert not any(r.killed for r in plain.task_records)
        assert plain.jobs[1].completion_time > 25.0


class TestCapacity:
    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            CapacityScheduler({})
        with pytest.raises(ValueError):
            CapacityScheduler({"q": -1.0})
        with pytest.raises(ValueError, match="default queue"):
            CapacityScheduler({"a": 1.0}, default_queue="missing")

    def test_under_capacity_queue_preferred(self):
        sched = CapacityScheduler(
            {"prod": 0.75, "dev": 0.25}, queue_of=lambda j: "prod" if j.job_id == 0 else "dev"
        )
        jobs = make_jobs((0.0, None), (1.0, None))
        jobs[0].maps_dispatched = 3  # prod usage ratio 3/0.75 = 4
        jobs[1].maps_dispatched = 0  # dev usage ratio 0
        assert sched.choose_next_map_task(jobs).job_id == 1

    def test_elastic_borrowing(self):
        """A queue over its share still gets slots when it's alone."""
        sched = CapacityScheduler({"prod": 0.5, "dev": 0.5}, queue_of=lambda j: "prod")
        jobs = make_jobs((0.0, None))
        jobs[0].maps_dispatched = 100
        assert sched.choose_next_map_task(jobs).job_id == 0

    def test_unknown_queue_maps_to_default(self):
        sched = CapacityScheduler({"a": 1.0}, queue_of=lambda j: "nonexistent")
        jobs = make_jobs((0.0, None))
        assert sched.choose_next_map_task(jobs).job_id == 0

    def test_fifo_within_queue(self):
        sched = CapacityScheduler({"a": 1.0}, queue_of=lambda j: "a")
        jobs = make_jobs((5.0, None), (1.0, None))
        assert sched.choose_next_map_task(jobs).job_id == 1


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("fifo", FIFOScheduler),
        ("FIFO", FIFOScheduler),
        ("maxedf", MaxEDFScheduler),
        ("minedf", MinEDFScheduler),
        ("fair", FairScheduler),
    ])
    def test_make_scheduler(self, name, cls):
        assert isinstance(make_scheduler(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("lottery")


class TestRegistryKwargs:
    def test_flex_metric_passthrough(self):
        from repro.schedulers import FlexScheduler

        sched = make_scheduler("flex", metric="makespan")
        assert isinstance(sched, FlexScheduler)
        assert sched.metric == "makespan"

    def test_minedf_bound_passthrough(self):
        sched = make_scheduler("minedf", bound="upper")
        assert sched.bound == "upper"

    def test_preemptive_variants_by_kwargs(self):
        assert make_scheduler("maxedf", preemptive=True).name == "MaxEDF+P"
        assert make_scheduler("minedf", preemptive=True).name == "MinEDF+P"

    def test_dp_alias(self):
        from repro.schedulers import DynamicPriorityScheduler

        assert isinstance(make_scheduler("dp"), DynamicPriorityScheduler)
