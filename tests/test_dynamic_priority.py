"""Tests for the Dynamic Priority (budget-based) scheduler."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, Job, TraceJob, simulate
from repro.schedulers import DynamicPriorityScheduler, UserAccount

from conftest import make_constant_profile


def job_for_user(job_id: int, name: str, **profile_kw) -> Job:
    profile = make_constant_profile(name=name, **profile_kw)
    return Job(job_id, TraceJob(profile, float(job_id)))


class TestUserAccount:
    def test_budget_depletes(self):
        acct = UserAccount("u", budget=100.0, spending_rate=2.0)
        acct.charge(30.0)  # 30 slot-seconds at rate 2
        assert acct.remaining == pytest.approx(40.0)
        assert acct.paying
        acct.charge(30.0)
        assert not acct.paying

    def test_validation(self):
        with pytest.raises(ValueError):
            UserAccount("u", budget=-1.0, spending_rate=1.0)
        with pytest.raises(ValueError):
            UserAccount("u", budget=1.0, spending_rate=0.0)


class TestDynamicPriority:
    def test_higher_bid_preferred(self):
        sched = DynamicPriorityScheduler(
            {"alice": (1000.0, 4.0), "bob": (1000.0, 1.0)},
            user_of=lambda j: j.profile.name,
        )
        alice, bob = job_for_user(0, "alice"), job_for_user(1, "bob")
        # Equal usage: the higher spending rate wins the slot.
        assert sched.choose_next_map_task([alice, bob]) is alice

    def test_shares_proportional_to_rates(self):
        sched = DynamicPriorityScheduler(
            {"alice": (1e9, 3.0), "bob": (1e9, 1.0)},
            user_of=lambda j: j.profile.name,
        )
        alice, bob = job_for_user(0, "alice"), job_for_user(1, "bob")
        # Alice already runs 3 tasks, bob 1: usage/rate ties at 1.0 each;
        # then submit-time order prefers alice (earlier).
        alice.maps_dispatched = 3
        bob.maps_dispatched = 1
        assert sched.choose_next_map_task([alice, bob]) is alice
        # One more alice task tips the ratio: bob's turn.
        alice.maps_dispatched = 4
        assert sched.choose_next_map_task([alice, bob]) is bob

    def test_charges_on_dispatch(self):
        sched = DynamicPriorityScheduler(
            {"alice": (100.0, 1.0)}, user_of=lambda j: j.profile.name
        )
        alice = job_for_user(0, "alice", map_s=10.0)
        sched.choose_next_map_task([alice])
        assert sched.account("alice").spent == pytest.approx(10.0)

    def test_broke_user_loses_priority(self):
        sched = DynamicPriorityScheduler(
            {"alice": (0.0, 10.0), "bob": (1000.0, 0.1)},
            user_of=lambda j: j.profile.name,
        )
        alice, bob = job_for_user(0, "alice"), job_for_user(1, "bob")
        # Alice bids high but has no budget: paying bob wins.
        assert sched.choose_next_map_task([alice, bob]) is bob

    def test_all_broke_falls_back_to_fifo(self):
        sched = DynamicPriorityScheduler(
            {"alice": (0.0, 1.0), "bob": (0.0, 1.0)},
            user_of=lambda j: j.profile.name,
        )
        alice, bob = job_for_user(0, "alice"), job_for_user(1, "bob")
        assert sched.choose_next_map_task([alice, bob]) is alice  # earlier submit

    def test_unknown_user_gets_default_account(self):
        sched = DynamicPriorityScheduler(default_account=(50.0, 2.0))
        job = job_for_user(0, "mystery")
        sched.choose_next_map_task([job])
        acct = sched.account("mystery")
        assert acct.budget == 50.0
        assert acct.spending_rate == 2.0

    def test_empty_queue(self):
        sched = DynamicPriorityScheduler()
        assert sched.choose_next_map_task([]) is None
        assert sched.choose_next_reduce_task([]) is None

    def test_end_to_end_budget_buys_speed(self):
        """Two identical jobs, one rich user, one poor: the rich user's
        job finishes first despite later submission."""
        profile_rich = make_constant_profile(name="rich", num_maps=20, num_reduces=0, map_s=10.0)
        profile_poor = make_constant_profile(name="poor", num_maps=20, num_reduces=0, map_s=10.0)
        trace = [TraceJob(profile_poor, 0.0), TraceJob(profile_rich, 0.0)]
        sched = DynamicPriorityScheduler(
            {"rich": (1e9, 10.0), "poor": (1e9, 1.0)},
            user_of=lambda j: j.profile.name,
        )
        result = simulate(trace, sched, ClusterConfig(4, 4))
        assert result.jobs[1].completion_time < result.jobs[0].completion_time

    def test_tuple_accounts_accepted(self):
        sched = DynamicPriorityScheduler({"u": (10.0, 2.0)})
        assert sched.accounts["u"].spending_rate == 2.0
