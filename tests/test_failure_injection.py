"""Tests for task-failure injection in the Hadoop emulator.

Hadoop retries failed attempts (up to ``mapred.map.max.attempts``); the
emulator reproduces that, and MRProfiler must extract clean profiles
from logs littered with FAILED attempts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TraceJob
from repro.hadoop import EmulatorConfig, HadoopClusterEmulator
from repro.mrprofiler import parse_history, profile_history

from conftest import make_constant_profile


def run_with_failures(rate: float, num_maps: int = 12, num_reduces: int = 4, seed: int = 0):
    profile = make_constant_profile(
        num_maps=num_maps, num_reduces=num_reduces, map_s=20.0,
        first_shuffle_s=5.0, reduce_s=4.0,
    )
    cfg = EmulatorConfig(
        num_nodes=8, heartbeat_interval=1.0, task_failure_rate=rate, seed=seed
    )
    return HadoopClusterEmulator(cfg).run([TraceJob(profile, 0.0)])


class TestFailureMechanics:
    def test_job_completes_despite_failures(self):
        result = run_with_failures(0.3)
        assert result.jobs[0].completion_time is not None
        failed = sum(1 for t in result.tasks if t.failed)
        assert failed > 0

    def test_every_task_eventually_succeeds(self):
        result = run_with_failures(0.3)
        succeeded = {
            (t.kind, t.index) for t in result.tasks if not t.failed and not t.killed
        }
        assert len([k for k in succeeded if k[0] == "map"]) == 12
        assert len([k for k in succeeded if k[0] == "reduce"]) == 4

    def test_retries_get_fresh_attempt_numbers(self):
        result = run_with_failures(0.4)
        by_task: dict[tuple, list[int]] = {}
        for t in result.tasks:
            by_task.setdefault((t.kind, t.index), []).append(t.attempt)
        for attempts in by_task.values():
            assert len(set(attempts)) == len(attempts)  # unique
            assert sorted(attempts) == list(range(len(attempts)))  # dense

    def test_failures_slow_the_job(self):
        clean = run_with_failures(0.0)
        flaky = run_with_failures(0.4)
        assert flaky.jobs[0].duration > clean.jobs[0].duration

    def test_zero_rate_injects_nothing(self):
        result = run_with_failures(0.0)
        assert not any(t.failed for t in result.tasks)

    def test_failed_attempt_ends_before_full_duration(self):
        result = run_with_failures(0.4)
        for t in result.tasks:
            if t.kind == "map" and t.failed:
                # Failure strikes partway through the ~20s work.
                assert t.end - t.start < 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmulatorConfig(task_failure_rate=1.0)
        with pytest.raises(ValueError):
            EmulatorConfig(task_failure_rate=-0.1)
        with pytest.raises(ValueError):
            EmulatorConfig(max_task_attempts=0)

    def test_determinism(self):
        a = run_with_failures(0.3, seed=5)
        b = run_with_failures(0.3, seed=5)
        assert a.completion_times() == b.completion_times()


class TestFailuresInLogs:
    def test_failed_attempts_logged(self):
        result = run_with_failures(0.3)
        history = result.history_text()
        assert 'TASK_STATUS="FAILED"' in history

    def test_profiler_extracts_clean_profile(self):
        """MRProfiler must use only the successful attempts."""
        result = run_with_failures(0.3)
        profiled = profile_history(result.history_text())
        profile = profiled[0].profile
        assert profile.num_maps == 12
        assert profile.num_reduces == 4
        # Winning map attempts ran the full ~20s work (within noise).
        assert np.all(profile.map_durations > 15.0)

    def test_parser_keeps_failed_attempts_rumen_style(self):
        result = run_with_failures(0.3)
        parsed = parse_history(result.history_text())[0]
        statuses = {a.status for a in parsed.all_map_attempts.values()}
        assert "FAILED" in statuses
        assert all(a.status == "SUCCESS" for a in parsed.map_attempts.values())
