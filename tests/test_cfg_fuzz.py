"""Property-based fuzzing of the CFG lowering.

``tests/test_cfg_dataflow.py`` pins the CFG shape for hand-written
exemplars; this file attacks the lowering with *generated* programs —
random nests of ``if``/``for``/``while``/``try``/``finally``/``with``/
``match`` — and asserts the structural invariants every lowering must
hold regardless of input shape:

* the builder never crashes on a syntactically valid function;
* every node is reachable from ENTRY (the generator emits no dead
  code: terminators only ever sit in else-less branches, so a live
  fall-through path always exists);
* every reachable node other than the two exits has at least one
  successor — all paths are *covered*, terminating in EXIT or
  RAISE_EXIT, never dangling;
* EXIT itself is reachable (the function can complete);
* lowering is deterministic: two builds of the same source produce
  identical node/edge structure.

No third-party property-testing framework is used — a seeded
``random.Random`` grammar walk gives reproducible cases (the failing
seed is in the assertion message) with zero dependencies.
"""

from __future__ import annotations

import ast
import random
import textwrap

from repro.analysis.cfg import CFG, build_cfg

N_SEEDS = 60
MAX_DEPTH = 3

_TERMINATORS = ("return 1", "raise ValueError('boom')")


class _ProgramGen:
    """Seeded random generator of one fuzzed function body.

    Structural guarantees (they are what make the reachability property
    assertable, not just likely):

    * terminators (``return``/``raise``/``break``/``continue``) appear
      only as the last statement of an *else-less* ``if`` branch — the
      false edge keeps the subsequent statements live;
    * every ``try`` body starts with a call (calls can raise), so its
      handlers are reachable via the exceptional edge;
    * loop conditions are calls/iterables, never ``True``, so the
      loop-exit edge always exists.
    """

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.counter = 0

    def _fresh(self) -> str:
        self.counter += 1
        return f"v{self.counter}"

    def _simple(self) -> list[str]:
        choice = self.rng.randrange(3)
        if choice == 0:
            return [f"{self._fresh()} = 1"]
        if choice == 1:
            return [f"{self._fresh()} = helper()"]
        return ["helper()"]

    def block(self, depth: int, in_loop: bool) -> list[str]:
        lines: list[str] = []
        for _ in range(self.rng.randint(1, 3)):
            lines.extend(self.stmt(depth, in_loop))
        return lines

    def stmt(self, depth: int, in_loop: bool) -> list[str]:
        options = ["simple", "simple", "if"]
        if depth > 0:
            options += ["for", "while", "try", "tryfin", "with", "match"]
        kind = self.rng.choice(options)
        pad = "    "
        if kind == "simple":
            return self._simple()
        if kind == "if":
            body = self.block(depth - 1, in_loop) if depth > 0 else self._simple()
            roll = self.rng.randrange(5)
            if roll == 0:
                body = body + [self.rng.choice(_TERMINATORS)]
            elif roll == 1 and in_loop:
                body = body + [self.rng.choice(["break", "continue"])]
            head = f"if flag{self.rng.randrange(3)}:"
            return [head] + [pad + line for line in body]
        if kind == "for":
            body = self.block(depth - 1, True)
            return [f"for item{self._fresh()} in items:"] + [
                pad + line for line in body
            ]
        if kind == "while":
            body = self.block(depth - 1, True)
            return ["while helper():"] + [pad + line for line in body]
        if kind == "tryfin":
            body = ["helper()"] + self.block(depth - 1, in_loop)
            final = self.block(depth - 1, in_loop)
            return (
                ["try:"] + [pad + line for line in body]
                + ["finally:"] + [pad + line for line in final]
            )
        if kind == "try":
            body = ["helper()"] + self.block(depth - 1, in_loop)
            out = ["try:"] + [pad + line for line in body]
            out += ["except ValueError:"] + [
                pad + line for line in self.block(depth - 1, in_loop)
            ]
            if self.rng.random() < 0.5:
                out += ["except Exception:"] + [pad + line for line in self._simple()]
            if self.rng.random() < 0.4:
                out += ["else:"] + [
                    pad + line for line in self.block(depth - 1, in_loop)
                ]
            if self.rng.random() < 0.5:
                out += ["finally:"] + [pad + line for line in self._simple()]
            return out
        if kind == "with":
            body = self.block(depth - 1, in_loop)
            return [f"with ctx() as handle{self._fresh()}:"] + [
                pad + line for line in body
            ]
        assert kind == "match"
        out = ["match subject:"]
        for pattern in ("1", "2"):
            if self.rng.random() < 0.6:
                out += [pad + f"case {pattern}:"] + [
                    pad * 2 + line for line in self.block(depth - 1, in_loop)
                ]
        if self.rng.random() < 0.5 or len(out) == 1:
            out += [pad + "case _:"] + [
                pad * 2 + line for line in self.block(depth - 1, in_loop)
            ]
        return out


def fuzzed_source(seed: int) -> str:
    gen = _ProgramGen(seed)
    body = gen.block(MAX_DEPTH, False) + ["return 0"]
    lines = ["def fuzzed(flag0, flag1, flag2, items, subject):"]
    lines += ["    " + line for line in body]
    return "\n".join(lines) + "\n"


def build(source: str) -> CFG:
    mod = ast.parse(source)
    func = mod.body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func)


def reachable_from_entry(cfg: CFG) -> set[int]:
    seen: set[int] = set()
    stack = [CFG.ENTRY]
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        node = cfg.nodes[index]
        stack.extend(node.succs)
        stack.extend(node.exc_succs)
    return seen


def structure(cfg: CFG) -> list[tuple[str, int, tuple[int, ...], tuple[int, ...]]]:
    return [
        (node.kind, node.lineno, tuple(node.succs), tuple(node.exc_succs))
        for node in cfg.nodes
    ]


class TestCfgFuzz:
    def test_invariants_over_random_nests(self):
        kinds_seen: set[str] = set()
        for seed in range(N_SEEDS):
            source = fuzzed_source(seed)
            context = f"seed {seed}:\n{textwrap.indent(source, '    ')}"
            cfg = build(source)
            kinds_seen.update(node.kind for node in cfg.nodes)

            reach = reachable_from_entry(cfg)
            unreachable = set(range(len(cfg.nodes))) - reach
            # Two nodes may be legitimately dead: RAISE_EXIT when nothing
            # can raise, and the eagerly allocated *exceptional* with-exit
            # when a with-body happens to contain only non-raising
            # statements.  Everything else must be live.
            stranded = [
                index for index in sorted(unreachable)
                if index != CFG.RAISE_EXIT
                and cfg.nodes[index].kind != "with_exit"
            ]
            assert not stranded, (
                f"unreachable nodes {stranded} in {context}"
            )
            assert CFG.EXIT in reach, f"EXIT unreachable in {context}"

            for index in reach:
                if index in (CFG.EXIT, CFG.RAISE_EXIT):
                    continue
                node = cfg.nodes[index]
                assert node.succs or node.exc_succs, (
                    f"dangling node {index} ({node.kind}, line {node.lineno}) "
                    f"in {context}"
                )

            assert structure(build(source)) == structure(cfg), (
                f"non-deterministic lowering in {context}"
            )
        # The generator must actually exercise the interesting lowerings
        # (a regression here would silently gut the whole test).
        assert "test" in kinds_seen  # if/while/for/match dispatch
        assert "with_enter" in kinds_seen

    def test_generator_is_deterministic(self):
        assert fuzzed_source(17) == fuzzed_source(17)
        assert fuzzed_source(17) != fuzzed_source(18)

    def test_exits_have_no_successors(self):
        for seed in range(10):
            cfg = build(fuzzed_source(seed))
            for index in (CFG.EXIT, CFG.RAISE_EXIT):
                node = cfg.nodes[index]
                assert not node.succs and not node.exc_succs
