"""CFG construction and dataflow-core unit tests.

The CONC/RES rules (``tests/test_simlint.py``) pin end-to-end analyzer
behaviour; this file pins the layer underneath — the per-function CFG
lowering (``repro.analysis.cfg``), the held-resource path walk
(``repro.analysis.dataflow``), and the parse-each-module-once contract
of ``lint_paths``.
"""

from __future__ import annotations

import ast
import textwrap
from collections import Counter
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.cfg import CFG, build_cfg, can_raise
from repro.analysis.dataflow import bare_names, track_acquisition

REPO_ROOT = Path(__file__).resolve().parent.parent
XMOD_DIR = REPO_ROOT / "tests" / "fixtures" / "xmod"


def func_cfg(source: str) -> CFG:
    mod = ast.parse(textwrap.dedent(source))
    func = next(
        n for n in mod.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(func)


def line_of(source: str, needle: str) -> int:
    for lineno, line in enumerate(textwrap.dedent(source).splitlines(), start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not in source")


def node_at(cfg: CFG, lineno: int) -> int:
    """Index of the (unique) statement node anchored at ``lineno``."""
    hits = [
        n.index
        for n in cfg.nodes
        if n.kind in ("stmt", "test", "with_enter") and n.lineno == lineno
    ]
    assert len(hits) == 1, f"expected one node at line {lineno}, got {hits}"
    return hits[0]


def reachable(cfg: CFG, start: int, *, exceptional: bool = True) -> set[int]:
    seen, stack = set(), [start]
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        node = cfg.nodes[index]
        stack.extend(node.succs)
        if exceptional:
            stack.extend(node.exc_succs)
    return seen


# --------------------------------------------------------------------- #
# CFG construction
# --------------------------------------------------------------------- #


class TestCfgShape:
    def test_linear_body_chains_entry_to_exit(self):
        cfg = func_cfg(
            """
            def f():
                a = 1
                b = a
            """
        )
        assert CFG.EXIT in reachable(cfg, CFG.ENTRY)
        # Plain name/constant traffic cannot raise: no exceptional edges.
        assert all(not n.exc_succs for n in cfg.nodes)

    def test_call_statement_gets_exceptional_edge(self):
        source = """
        def f(x):
            x.poke()
        """
        cfg = func_cfg(source)
        idx = node_at(cfg, line_of(source, "poke"))
        assert cfg.nodes[idx].exc_succs == [CFG.RAISE_EXIT]

    def test_early_return_drops_unreachable_tail(self):
        source = """
        def f(flag):
            if flag:
                return 1
            return 2
            never = 3
        """
        cfg = func_cfg(source)
        assert all(
            n.lineno != line_of(source, "never = 3") for n in cfg.nodes
        ), "code after the last return must not be lowered"
        for needle in ("return 1", "return 2"):
            idx = node_at(cfg, line_of(source, needle))
            assert CFG.EXIT in cfg.nodes[idx].succs

    def test_if_without_else_falls_through(self):
        source = """
        def f(flag):
            if flag:
                a = 1
            b = 2
        """
        cfg = func_cfg(source)
        test = node_at(cfg, line_of(source, "if flag"))
        after = node_at(cfg, line_of(source, "b = 2"))
        body = node_at(cfg, line_of(source, "a = 1"))
        # Both the taken and the skipped branch reach the statement after.
        assert after in cfg.nodes[test].succs
        assert after in cfg.nodes[body].succs

    def test_while_has_back_edge_and_exit(self):
        source = """
        def f(n):
            while n:
                n = step(n)
            done = 1
        """
        cfg = func_cfg(source)
        head = node_at(cfg, line_of(source, "while n"))
        body = node_at(cfg, line_of(source, "step(n)"))
        after = node_at(cfg, line_of(source, "done = 1"))
        assert head in cfg.nodes[body].succs  # back edge
        assert after in cfg.nodes[head].succs  # loop exit

    def test_break_reaches_code_after_loop(self):
        source = """
        def f(items):
            for item in items:
                if item:
                    break
            after = 1
        """
        cfg = func_cfg(source)
        brk = node_at(cfg, line_of(source, "break"))
        after = node_at(cfg, line_of(source, "after = 1"))
        assert after in reachable(cfg, brk)

    def test_try_finally_runs_on_both_paths(self):
        source = """
        def f(conn):
            try:
                conn.execute()
            finally:
                conn.close()
        """
        cfg = func_cfg(source)
        execute = node_at(cfg, line_of(source, "execute"))
        close = node_at(cfg, line_of(source, "close"))
        fin_enter = cfg.nodes[execute].exc_succs[0]
        # The body's exception routes into the finally, never straight out.
        assert cfg.nodes[fin_enter].kind == "finally"
        assert close in reachable(cfg, fin_enter, exceptional=False)
        # The finally's exit reaches both continuations.
        tail = reachable(cfg, close)
        assert CFG.EXIT in tail and CFG.RAISE_EXIT in tail

    def test_return_inside_try_routes_through_finally(self):
        source = """
        def f(conn):
            try:
                return conn.fetch()
            finally:
                conn.close()
        """
        cfg = func_cfg(source)
        ret = node_at(cfg, line_of(source, "return conn.fetch"))
        close = node_at(cfg, line_of(source, "close"))
        assert close in reachable(cfg, ret, exceptional=False)
        assert CFG.EXIT not in cfg.nodes[ret].succs  # no finally bypass

    def test_with_body_exception_runs_exit_handler(self):
        source = """
        def f(lock, jobs):
            with lock:
                jobs.pop()
            after = 1
        """
        cfg = func_cfg(source)
        pop = node_at(cfg, line_of(source, "pop"))
        [exc_exit] = cfg.nodes[pop].exc_succs
        # __exit__ runs, then the exception keeps propagating.
        assert cfg.nodes[exc_exit].kind == "with_exit"
        assert cfg.nodes[exc_exit].succs == [CFG.RAISE_EXIT]
        # The normal path leaves through a *different* with_exit node.
        after = node_at(cfg, line_of(source, "after = 1"))
        [norm_exit] = [
            n.index for n in cfg.nodes
            if n.kind == "with_exit" and after in n.succs
        ]
        assert norm_exit != exc_exit

    def test_nested_function_body_is_not_lowered(self):
        source = """
        def f():
            def helper():
                dangerous.call()
            return helper
        """
        cfg = func_cfg(source)
        assert all(
            n.lineno != line_of(source, "dangerous.call") for n in cfg.nodes
        ), "inner bodies run elsewhere; they get no nodes here"
        helper_def = node_at(cfg, line_of(source, "def helper"))
        assert not cfg.nodes[helper_def].exc_succs  # defining cannot raise

    def test_comprehension_counts_as_raising(self):
        source = """
        def f(xs):
            ys = [step(x) for x in xs]
            return ys
        """
        cfg = func_cfg(source)
        comp = node_at(cfg, line_of(source, "step(x)"))
        assert cfg.nodes[comp].exc_succs == [CFG.RAISE_EXIT]

    def test_can_raise_skips_lambda_bodies(self):
        mod = ast.parse("f = lambda: boom()\n")
        assert not can_raise((mod.body[0],))


# --------------------------------------------------------------------- #
# track_acquisition
# --------------------------------------------------------------------- #


def _track(source: str, var: str):
    """Track ``var`` acquired at its first assignment; ``var.close()``
    kills, any other bare use escapes."""
    cfg = func_cfg(source)

    def is_acquire(index: int) -> bool:
        for frag in cfg.nodes[index].scan:
            if isinstance(frag, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == var for t in frag.targets
            ):
                return True
        return False

    def is_kill(index: int) -> bool:
        for frag in cfg.nodes[index].scan:
            for call in ast.walk(frag):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "close"
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == var
                ):
                    return True
        return False

    def is_escape(index: int) -> bool:
        if is_kill(index):
            return False
        return any(bare_names(frag, var) for frag in cfg.nodes[index].scan)

    acquire = next(n.index for n in cfg.nodes if is_acquire(n.index))
    return track_acquisition(cfg, acquire, is_kill, is_escape)


class TestTrackAcquisition:
    def test_never_released_leaks_both_exits(self):
        report = _track(
            """
            def f(path):
                r = grab(path)
                r.poke()
            """,
            "r",
        )
        assert report.held_at_exit
        assert report.held_at_raise

    def test_try_finally_release_is_clean(self):
        report = _track(
            """
            def f(path):
                r = grab(path)
                try:
                    r.poke()
                finally:
                    r.close()
            """,
            "r",
        )
        assert not report.held_at_exit
        assert not report.held_at_raise

    def test_release_only_at_end_leaks_the_exception_path(self):
        source = """
        def f(path):
            r = grab(path)
            r.poke()
            r.close()
        """
        report = _track(source, "r")
        assert not report.held_at_exit
        assert report.held_at_raise
        # The witness is the statement whose exception skips the close.
        assert report.raise_line == line_of(source, "r.poke()")

    def test_escape_transfers_ownership(self):
        report = _track(
            """
            def f(path, owners):
                r = grab(path)
                owners.append(r)
                r.poke()
            """,
            "r",
        )
        assert not report.held_at_exit
        assert not report.held_at_raise

    def test_raising_close_still_counts_as_released(self):
        # Optimistic-at-kill: cleanup code must not flag itself even
        # though close() itself can raise.
        report = _track(
            """
            def f(path):
                r = grab(path)
                r.close()
            """,
            "r",
        )
        assert not report.held_at_exit
        assert not report.held_at_raise

    def test_exception_path_through_shared_finally_is_exceptional(self):
        # The finally lowering merges exception continuations into the
        # normal successor fan-out; reaching EXIT that way must still
        # register as an exceptional leak, not a normal-exit one.
        source = """
        def f(conn):
            r = conn.cursor()
            try:
                r.poke()
                r.close()
            finally:
                conn.close()
        """
        report = _track(source, "r")
        assert not report.held_at_exit
        assert report.held_at_raise
        assert report.raise_line == line_of(source, "r.poke()")


class TestBareNames:
    def test_value_positions_are_bare(self):
        expr = ast.parse("owners.append(seg)").body[0]
        assert len(bare_names(expr, "seg")) == 1
        ret = ast.parse("def f():\n    return seg\n").body[0].body[0]
        assert len(bare_names(ret, "seg")) == 1

    def test_dereferences_are_not_bare(self):
        for text in ("seg.close()", "x = seg.name", "seg.buf[:1] = b'x'"):
            expr = ast.parse(text).body[0]
            assert bare_names(expr, "seg") == []


# --------------------------------------------------------------------- #
# lint_paths parses each module exactly once
# --------------------------------------------------------------------- #


class TestParseOnce:
    def test_each_module_parsed_once(self, monkeypatch):
        counts: Counter[str] = Counter()
        real_parse = ast.parse

        def counting_parse(source, filename="<unknown>", *args, **kwargs):
            counts[str(filename)] += 1
            return real_parse(source, filename, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)
        lint_paths([XMOD_DIR], root=REPO_ROOT)
        per_module = {f: c for f, c in counts.items() if f.endswith(".py")}
        assert len(per_module) == len(list(XMOD_DIR.glob("*.py")))
        assert all(c == 1 for c in per_module.values()), per_module
