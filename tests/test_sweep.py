"""Tests for the what-if sweep harness."""

from __future__ import annotations

import pytest

import json

from repro.cli import main
from repro.core import ClusterConfig, TraceJob
from repro.parallel import ResultCache, SchedulerSpec
from repro.schedulers import FIFOScheduler, MinEDFScheduler
from repro.sweep import expand_grid, run_sweep

from conftest import make_constant_profile


@pytest.fixture
def trace():
    profile = make_constant_profile(num_maps=16, num_reduces=4, map_s=10.0)
    return [TraceJob(profile, 0.0, deadline=100.0), TraceJob(profile, 5.0)]


class TestExpandGrid:
    def test_deterministic_order(self):
        points = expand_grid(
            ("fifo", "maxedf"), (ClusterConfig(8, 8), ClusterConfig(16, 16)), (0.05, 1.0)
        )
        assert len(points) == 8
        # Schedulers outermost, then clusters, then slow-starts.
        assert [p.scheduler.name for p in points[:4]] == ["fifo"] * 4
        assert [p.slowstart for p in points[:2]] == [0.05, 1.0]
        assert points == expand_grid(
            ("fifo", "maxedf"), (ClusterConfig(8, 8), ClusterConfig(16, 16)), (0.05, 1.0)
        )

    def test_single_point_grid(self):
        points = expand_grid(("fifo",), (ClusterConfig(8, 8),), (0.05,))
        assert len(points) == 1
        assert points[0].scheduler == SchedulerSpec(name="fifo")
        assert points[0].cluster == ClusterConfig(8, 8)

    @pytest.mark.parametrize(
        "kwargs, axis",
        [
            (dict(schedulers=()), "schedulers"),
            (dict(clusters=()), "clusters"),
            (dict(slowstarts=()), "slowstarts"),
        ],
    )
    def test_empty_axis_rejected(self, kwargs, axis):
        full = dict(
            schedulers=("fifo",), clusters=(ClusterConfig(8, 8),), slowstarts=(0.05,)
        )
        full.update(kwargs)
        with pytest.raises(ValueError, match=f"empty {axis} axis"):
            expand_grid(**full)

    def test_duplicates_dropped_keeping_first(self):
        points = expand_grid(
            ("fifo", "fifo", "maxedf"),
            (ClusterConfig(8, 8), ClusterConfig(8, 8)),
            (0.05, 0.05, 1.0),
        )
        assert len(points) == 4  # 2 schedulers x 1 cluster x 2 slow-starts
        keys = [(p.scheduler.name, p.cluster, p.slowstart) for p in points]
        assert len(set(keys)) == len(keys)
        assert keys[0] == ("fifo", ClusterConfig(8, 8), 0.05)

    def test_int_slowstart_coerced(self):
        points = expand_grid(("fifo",), (ClusterConfig(8, 8),), (1,))
        assert points[0].slowstart == 1.0
        assert isinstance(points[0].slowstart, float)


class TestRunSweep:
    def test_cartesian_product(self, trace):
        result = run_sweep(
            trace,
            schedulers=("fifo", "maxedf"),
            clusters=(ClusterConfig(8, 8), ClusterConfig(16, 16)),
            slowstarts=(0.05, 1.0),
        )
        assert len(result.cells) == 2 * 2 * 2
        schedulers = {c.scheduler for c in result.cells}
        assert schedulers == {"FIFO", "MaxEDF"}

    def test_metrics_sane(self, trace):
        result = run_sweep(trace, schedulers=("fifo",), clusters=(ClusterConfig(8, 8),))
        cell = result.cells[0]
        assert cell.makespan > 0
        assert cell.mean_duration <= cell.makespan
        assert cell.p95_duration >= cell.mean_duration

    def test_bigger_cluster_never_slower(self, trace):
        result = run_sweep(
            trace,
            schedulers=("fifo",),
            clusters=(ClusterConfig(4, 4), ClusterConfig(32, 32)),
        )
        small, big = result.cells
        assert big.makespan <= small.makespan

    def test_best_by(self, trace):
        result = run_sweep(
            trace,
            schedulers=("fifo", "minedf"),
            clusters=(ClusterConfig(8, 8), ClusterConfig(32, 32)),
        )
        best = result.best_by("makespan")
        assert best.makespan == min(c.makespan for c in result.cells)
        with pytest.raises(ValueError, match="unknown metric"):
            result.best_by("happiness")

    def test_factory_mapping(self, trace):
        result = run_sweep(
            trace,
            schedulers={"custom": lambda: MinEDFScheduler(bound="upper")},
            clusters=(ClusterConfig(8, 8),),
        )
        assert result.cells[0].scheduler == "MinEDF"

    def test_validation(self, trace):
        with pytest.raises(ValueError, match="empty trace"):
            run_sweep([])
        with pytest.raises(ValueError, match="at least one scheduler"):
            run_sweep(trace, schedulers={})

    def test_cells_carry_engine_path(self, trace):
        """Every cell reports which execution path produced it; static
        and Fair policies stay on the kernel, uncontracted dynamic ones
        name their fallback reason."""
        result = run_sweep(
            trace,
            schedulers=("fifo", "fair"),
            clusters=(ClusterConfig(8, 8),),
        )
        for cell in result.cells:
            assert cell.engine_path == "kernel"
            assert cell.fallback_reason is None
            assert cell.row()["engine_path"] == "kernel"

    def test_fallback_cells_name_their_reason(self, trace):
        result = run_sweep(
            trace,
            schedulers=[SchedulerSpec(kind="zoo", name="DynamicPriority")],
            clusters=(ClusterConfig(8, 8),),
        )
        cell = result.cells[0]
        assert cell.engine_path == "object"
        assert "without the columnar contract" in cell.fallback_reason

    def test_engine_path_survives_cache_restore(self, trace, tmp_path):
        cache = tmp_path / "results.sqlite"
        for expect_cached in (False, True):
            result = run_sweep(
                trace, schedulers=("fifo",), clusters=(ClusterConfig(8, 8),),
                cache=cache,
            )
            cell = result.cells[0]
            assert cell.cached is expect_cached
            assert cell.engine_path == "kernel"


class TestSweepCLI:
    def test_sweep_command(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate", str(trace_path), "--jobs", "4", "--seed", "1",
              "--deadline-factor", "2.0"])
        assert main([
            "sweep", str(trace_path), "--schedulers", "fifo,minedf",
            "--map-slots", "32,64", "--best-by", "makespan",
        ]) == 0
        out = capsys.readouterr().out
        assert "What-if sweep (4 cells)" in out
        assert "best makespan" in out

    def test_mismatched_slot_lists(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate", str(trace_path), "--jobs", "2", "--seed", "1"])
        assert main([
            "sweep", str(trace_path), "--map-slots", "32,64", "--reduce-slots", "32",
        ]) == 2

    def test_workers_and_warm_cache(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate", str(trace_path), "--jobs", "4", "--seed", "1"])
        argv = ["sweep", str(trace_path), "--schedulers", "fifo,minedf",
                "--map-slots", "32,64", "--workers", "2"]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "4 cell(s) executed, 0 served from cache" in cold.out
        assert "(2 workers)" in cold.out
        assert cold.err.count("(ran)") == 4
        # Second run: every cell restored from the default cache
        # (redirected to a temp dir by the autouse conftest fixture).
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "0 cell(s) executed, 4 served from cache" in warm.out
        assert warm.err.count("(cached)") == 4

    def test_json_format_digests_match_serial(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate", str(trace_path), "--jobs", "4", "--seed", "1"])
        base = ["sweep", str(trace_path), "--schedulers", "fifo",
                "--map-slots", "32,64", "--format", "json", "--best-by", "makespan"]
        capsys.readouterr()  # drain the generate output
        assert main(base + ["--no-cache"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(base + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        digests = [c["event_digest"] for c in serial["cells"]]
        assert all(digests)
        assert [c["event_digest"] for c in parallel["cells"]] == digests
        assert serial["best"]["metric"] == "makespan"
        assert serial["cache_hits"] == 0 and serial["executed"] == 2

    def test_fresh_reexecutes(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate", str(trace_path), "--jobs", "2", "--seed", "1"])
        cache_path = tmp_path / "cache.sqlite"
        argv = ["sweep", str(trace_path), "--schedulers", "fifo",
                "--map-slots", "32", "--cache-path", str(cache_path), "--quiet"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--fresh"]) == 0
        out = capsys.readouterr()
        assert "1 cell(s) executed, 0 served from cache" in out.out
        assert out.err == ""  # --quiet suppresses progress
        with ResultCache(cache_path) as cache:
            assert len(cache) == 1

    def test_no_cache_conflicts(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate", str(trace_path), "--jobs", "2", "--seed", "1"])
        assert main(["sweep", str(trace_path), "--no-cache", "--fresh"]) == 2
        assert "conflicts" in capsys.readouterr().err
