"""Tests for the what-if sweep harness."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import ClusterConfig, TraceJob
from repro.schedulers import FIFOScheduler, MinEDFScheduler
from repro.sweep import run_sweep

from conftest import make_constant_profile


@pytest.fixture
def trace():
    profile = make_constant_profile(num_maps=16, num_reduces=4, map_s=10.0)
    return [TraceJob(profile, 0.0, deadline=100.0), TraceJob(profile, 5.0)]


class TestRunSweep:
    def test_cartesian_product(self, trace):
        result = run_sweep(
            trace,
            schedulers=("fifo", "maxedf"),
            clusters=(ClusterConfig(8, 8), ClusterConfig(16, 16)),
            slowstarts=(0.05, 1.0),
        )
        assert len(result.cells) == 2 * 2 * 2
        schedulers = {c.scheduler for c in result.cells}
        assert schedulers == {"FIFO", "MaxEDF"}

    def test_metrics_sane(self, trace):
        result = run_sweep(trace, schedulers=("fifo",), clusters=(ClusterConfig(8, 8),))
        cell = result.cells[0]
        assert cell.makespan > 0
        assert cell.mean_duration <= cell.makespan
        assert cell.p95_duration >= cell.mean_duration

    def test_bigger_cluster_never_slower(self, trace):
        result = run_sweep(
            trace,
            schedulers=("fifo",),
            clusters=(ClusterConfig(4, 4), ClusterConfig(32, 32)),
        )
        small, big = result.cells
        assert big.makespan <= small.makespan

    def test_best_by(self, trace):
        result = run_sweep(
            trace,
            schedulers=("fifo", "minedf"),
            clusters=(ClusterConfig(8, 8), ClusterConfig(32, 32)),
        )
        best = result.best_by("makespan")
        assert best.makespan == min(c.makespan for c in result.cells)
        with pytest.raises(ValueError, match="unknown metric"):
            result.best_by("happiness")

    def test_factory_mapping(self, trace):
        result = run_sweep(
            trace,
            schedulers={"custom": lambda: MinEDFScheduler(bound="upper")},
            clusters=(ClusterConfig(8, 8),),
        )
        assert result.cells[0].scheduler == "MinEDF"

    def test_validation(self, trace):
        with pytest.raises(ValueError, match="empty trace"):
            run_sweep([])
        with pytest.raises(ValueError, match="at least one scheduler"):
            run_sweep(trace, schedulers={})


class TestSweepCLI:
    def test_sweep_command(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate", str(trace_path), "--jobs", "4", "--seed", "1",
              "--deadline-factor", "2.0"])
        assert main([
            "sweep", str(trace_path), "--schedulers", "fifo,minedf",
            "--map-slots", "32,64", "--best-by", "makespan",
        ]) == 0
        out = capsys.readouterr().out
        assert "What-if sweep (4 cells)" in out
        assert "best makespan" in out

    def test_mismatched_slot_lists(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate", str(trace_path), "--jobs", "2", "--seed", "1"])
        assert main([
            "sweep", str(trace_path), "--map-slots", "32,64", "--reduce-slots", "32",
        ]) == 2
