"""Behavioural tests of the simulator engine on analytic scenarios.

Constant-duration profiles make completion times exactly predictable, so
these tests pin the engine's semantics: wave structure, the first-shuffle
filler mechanism, slow-start, and the seven-event protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

import functools
import sys

from repro.core import ClusterConfig, JobState, SimulatorEngine, TraceJob
from repro.core import simulate as _simulate
from repro.schedulers import FIFOScheduler

from conftest import make_constant_profile

simulate = _simulate


@pytest.fixture(autouse=True)
def _both_engines(engine_kind, monkeypatch):
    """Run every test in this module on both execution paths."""
    monkeypatch.setattr(
        sys.modules[__name__],
        "simulate",
        functools.partial(_simulate, engine=engine_kind),
    )


def run_single(profile, map_slots, reduce_slots, **kw):
    return simulate(
        [TraceJob(profile, 0.0)],
        FIFOScheduler(),
        ClusterConfig(map_slots, reduce_slots),
        **kw,
    )


class TestSingleWaveTiming:
    def test_map_only_job_single_wave(self):
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        result = run_single(profile, 4, 4)
        # All four maps run concurrently: completion at exactly 10s.
        assert result.jobs[0].completion_time == pytest.approx(10.0)
        assert result.jobs[0].map_stage_end == pytest.approx(10.0)

    def test_map_only_two_waves(self):
        profile = make_constant_profile(num_maps=8, num_reduces=0, map_s=10.0)
        result = run_single(profile, 4, 4)
        assert result.jobs[0].completion_time == pytest.approx(20.0)

    def test_full_job_single_waves(self):
        """1 map wave + first shuffle (from map end) + reduce phase."""
        profile = make_constant_profile(
            num_maps=4, num_reduces=2, map_s=10.0, first_shuffle_s=5.0, reduce_s=3.0
        )
        result = run_single(profile, 4, 2)
        # maps end at 10; first-wave reduces (fillers) complete their
        # non-overlapping shuffle at 15, reduce phase at 18.
        assert result.jobs[0].completion_time == pytest.approx(18.0)

    def test_reduce_second_wave_uses_typical_shuffle(self):
        profile = make_constant_profile(
            num_maps=2,
            num_reduces=2,
            map_s=10.0,
            first_shuffle_s=5.0,
            typical_shuffle_s=4.0,
            reduce_s=3.0,
        )
        # Only 1 reduce slot: wave 1 is a filler (5+3 after map end at 10
        # -> finishes 18); wave 2 starts at 18, typical shuffle 4 + 3 -> 25.
        result = run_single(profile, 2, 1)
        assert result.jobs[0].completion_time == pytest.approx(25.0)

    def test_zero_map_job(self):
        profile = make_constant_profile(
            num_maps=0, num_reduces=2, first_shuffle_s=5.0, reduce_s=3.0
        )
        result = run_single(profile, 4, 2)
        # Map stage trivially complete at submit; reduces run first-wave
        # shuffle immediately.
        assert result.jobs[0].completion_time == pytest.approx(8.0)

    def test_single_task_job(self):
        profile = make_constant_profile(num_maps=1, num_reduces=0, map_s=7.5)
        result = run_single(profile, 64, 64)
        assert result.jobs[0].completion_time == pytest.approx(7.5)


class TestShuffleOverlapSemantics:
    def test_first_shuffle_counted_from_map_stage_end(self):
        """A filler reduce dispatched early still ends map_end + sh1 + red."""
        profile = make_constant_profile(
            num_maps=8, num_reduces=1, map_s=10.0, first_shuffle_s=5.0, reduce_s=3.0
        )
        # 2 map waves -> map end at 20.  Reduce starts after slow-start
        # (5% of 8 maps -> first map completion) but finishes 20 + 5 + 3.
        result = run_single(profile, 4, 1)
        assert result.jobs[0].completion_time == pytest.approx(28.0)
        record = result.task_records_for(0, "reduce")[0]
        assert record.first_wave
        assert record.start < 20.0  # dispatched during the map stage
        assert record.shuffle_end == pytest.approx(25.0)

    def test_slowstart_delays_reduce_dispatch(self):
        profile = make_constant_profile(
            num_maps=4, num_reduces=1, map_s=10.0, first_shuffle_s=5.0, reduce_s=3.0
        )
        # With threshold 1.0 the reduce may only start once all maps are
        # done; it still completes at map_end + sh1 + red = 18.
        result = run_single(profile, 4, 1, min_map_percent_completed=1.0)
        record = result.task_records_for(0, "reduce")[0]
        assert record.start == pytest.approx(10.0)
        assert result.jobs[0].completion_time == pytest.approx(18.0)

    def test_zero_slowstart_dispatches_reduces_at_once(self):
        profile = make_constant_profile(
            num_maps=4, num_reduces=1, map_s=10.0, first_shuffle_s=5.0, reduce_s=3.0
        )
        result = run_single(profile, 2, 1, min_map_percent_completed=0.0)
        record = result.task_records_for(0, "reduce")[0]
        assert record.start == pytest.approx(0.0)


class TestEngineMechanics:
    def test_all_jobs_complete(self, rng):
        from conftest import make_random_profile

        trace = [
            TraceJob(make_random_profile(rng, f"j{i}", 10, 5), float(i)) for i in range(10)
        ]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        assert all(j.completion_time is not None for j in result.jobs)

    def test_makespan_is_last_completion(self, single_job_trace):
        result = simulate(single_job_trace, FIFOScheduler(), ClusterConfig(4, 4))
        assert result.makespan == max(j.completion_time for j in result.jobs)

    def test_event_count_accounting(self):
        """Each task contributes an arrival and a departure; each job an
        arrival, a departure and (with maps) an ALL_MAPS_FINISHED."""
        profile = make_constant_profile(num_maps=3, num_reduces=2)
        result = run_single(profile, 4, 4)
        tasks = 3 + 2
        assert result.events_processed == 2 * tasks + 3

    def test_record_tasks_false_keeps_timings(self, single_job_trace):
        with_records = simulate(single_job_trace, FIFOScheduler(), ClusterConfig(4, 4))
        without = simulate(
            single_job_trace, FIFOScheduler(), ClusterConfig(4, 4), record_tasks=False
        )
        assert without.task_records == []
        assert without.completion_times() == with_records.completion_times()

    def test_determinism(self, rng):
        from conftest import make_random_profile

        trace = [
            TraceJob(make_random_profile(rng, f"j{i}", 15, 6), float(3 * i)) for i in range(6)
        ]
        r1 = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        r2 = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        assert r1.completion_times() == r2.completion_times()
        assert r1.events_processed == r2.events_processed

    def test_engine_reusable(self, single_job_trace):
        engine = SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler())
        first = engine.run(single_job_trace)
        second = engine.run(single_job_trace)
        assert first.completion_times() == second.completion_times()

    def test_invalid_slowstart_rejected(self):
        with pytest.raises(ValueError, match="min_map_percent_completed"):
            SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler(), min_map_percent_completed=1.5)

    def test_empty_trace(self):
        result = simulate([], FIFOScheduler(), ClusterConfig(4, 4))
        assert result.makespan == 0.0
        assert len(result.jobs) == 0

    def test_job_states_completed(self, single_job_trace):
        engine = SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler())
        engine.run(single_job_trace)
        assert all(j.state is JobState.COMPLETED for j in engine._jobs)

    def test_queued_jobs_wait_for_slots(self):
        """Two identical jobs on a cluster that fits one: serialized."""
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        trace = [TraceJob(profile, 0.0), TraceJob(profile, 0.0)]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))
        assert result.jobs[0].completion_time == pytest.approx(10.0)
        assert result.jobs[1].completion_time == pytest.approx(20.0)

    def test_later_arrival_processed_later_under_fifo(self):
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        trace = [TraceJob(profile, 5.0), TraceJob(profile, 0.0)]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))
        # Job 1 (submitted at 0) runs first despite being second in the list.
        assert result.jobs[1].completion_time == pytest.approx(10.0)
        assert result.jobs[0].completion_time == pytest.approx(20.0)


class TestSlotConservation:
    @pytest.mark.parametrize("map_slots,reduce_slots", [(2, 1), (4, 4), (16, 8)])
    def test_concurrency_never_exceeds_slots(self, rng, map_slots, reduce_slots):
        from conftest import make_random_profile

        trace = [
            TraceJob(make_random_profile(rng, f"j{i}", 12, 7), float(i)) for i in range(5)
        ]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(map_slots, reduce_slots))
        for kind, limit in (("map", map_slots), ("reduce", reduce_slots)):
            intervals = [
                (r.start, r.end) for r in result.task_records if r.kind == kind
            ]
            events = sorted(
                [(s, 1) for s, _ in intervals] + [(e, -1) for _, e in intervals],
                key=lambda x: (x[0], x[1]),
            )
            running = 0
            for _, delta in events:
                running += delta
                assert running <= limit


class TestStalledSimulation:
    def test_unschedulable_reduces_raise(self):
        """Reduce work on a zero-reduce-slot cluster must fail loudly,
        not silently report an unfinished job."""
        profile = make_constant_profile(num_maps=2, num_reduces=2)
        with pytest.raises(RuntimeError, match="stalled"):
            simulate([TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(4, 0))

    def test_map_only_jobs_fine_without_reduce_slots(self):
        profile = make_constant_profile(num_maps=2, num_reduces=0, map_s=5.0)
        result = simulate([TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(4, 0))
        assert result.jobs[0].completion_time == pytest.approx(5.0)
