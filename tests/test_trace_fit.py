"""Tests for fitting generative job specs from recorded profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import JobProfile
from repro.stats.kl import histogram_kl
from repro.trace.distributions import Empirical, Exponential, Gamma, LogNormal
from repro.trace.fit import fit_duration_distribution, fit_spec_from_profiles
from repro.workloads import app_spec

from conftest import make_constant_profile


class TestFitDurationDistribution:
    def test_recovers_lognormal(self):
        rng = np.random.default_rng(0)
        sample = rng.lognormal(3.0, 0.5, 5000)
        dist = fit_duration_distribution(sample)
        assert isinstance(dist, LogNormal)
        assert dist.mu == pytest.approx(3.0, abs=0.1)
        assert dist.sigma == pytest.approx(0.5, abs=0.05)

    def test_recovers_exponential_shape(self):
        """Exponential data may also fit as Weibull(shape~1) or
        Gamma(shape~1) — mathematically the same law; check the law."""
        from repro.trace.distributions import Weibull

        rng = np.random.default_rng(1)
        dist = fit_duration_distribution(rng.exponential(7.0, 5000))
        assert dist.mean() == pytest.approx(7.0, rel=0.1)
        if isinstance(dist, Weibull):
            assert dist.shape == pytest.approx(1.0, abs=0.05)
        elif isinstance(dist, Gamma):
            assert dist.shape == pytest.approx(1.0, abs=0.05)
        else:
            assert isinstance(dist, Exponential)

    def test_small_samples_fall_back_to_empirical(self):
        dist = fit_duration_distribution([1.0, 2.0, 3.0])
        assert isinstance(dist, Empirical)

    def test_constant_samples_fall_back_to_empirical(self):
        dist = fit_duration_distribution([5.0] * 100)
        assert isinstance(dist, Empirical)
        assert dist.mean() == 5.0

    def test_fitted_distribution_is_serializable(self):
        from repro.trace.distributions import from_spec

        rng = np.random.default_rng(2)
        dist = fit_duration_distribution(rng.gamma(4.0, 2.0, 3000))
        rebuilt = from_spec(dist.to_spec())
        assert rebuilt == dist

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_duration_distribution([])


class TestFitSpecFromProfiles:
    def executions(self, app="Sort", n=3, seed=5):
        rng = np.random.default_rng(seed)
        return [app_spec(app).make_profile(rng) for _ in range(n)]

    def test_generated_jobs_resemble_recordings(self):
        """record -> fit -> generate keeps the duration distributions."""
        recorded = self.executions("Sort")
        spec = fit_spec_from_profiles(recorded)
        rng = np.random.default_rng(9)
        generated = spec.make_profile(rng)
        assert generated.num_maps == recorded[0].num_maps
        kl = histogram_kl(generated.map_durations, recorded[0].map_durations)
        assert kl < 1.0
        kl_red = histogram_kl(generated.reduce_durations, recorded[0].reduce_durations)
        assert kl_red < 1.5

    def test_task_counts_sampled_from_observed(self):
        recorded = self.executions()
        spec = fit_spec_from_profiles(recorded)
        rng = np.random.default_rng(0)
        counts = {spec.make_profile(rng).num_maps for _ in range(10)}
        assert counts <= {p.num_maps for p in recorded}

    def test_refuses_to_blend_different_applications(self):
        rng = np.random.default_rng(3)
        mixed = [app_spec("Sort").make_profile(rng), app_spec("WordCount").make_profile(rng)]
        with pytest.raises(ValueError, match="same application"):
            fit_spec_from_profiles(mixed)

    def test_check_can_be_disabled(self):
        rng = np.random.default_rng(3)
        mixed = [app_spec("Sort").make_profile(rng), app_spec("WordCount").make_profile(rng)]
        spec = fit_spec_from_profiles(mixed, same_app_kl_threshold=None)
        assert spec.name == "Sort"

    def test_map_only_profiles(self):
        profiles = [make_constant_profile(num_maps=50, num_reduces=0, map_s=10.0)]
        spec = fit_spec_from_profiles(profiles)
        rng = np.random.default_rng(0)
        generated = spec.make_profile(rng)
        assert generated.num_reduces == 0
        assert np.all(generated.map_durations == 10.0)

    def test_spec_round_trips_through_json(self):
        from repro.trace.synthetic import SyntheticJobSpec

        spec = fit_spec_from_profiles(self.executions())
        rebuilt = SyntheticJobSpec.from_dict(spec.to_spec())
        rng = np.random.default_rng(4)
        a = spec.make_profile(np.random.default_rng(4))
        b = rebuilt.make_profile(np.random.default_rng(4))
        assert np.array_equal(a.map_durations, b.map_durations)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            fit_spec_from_profiles([])

    def test_custom_name(self):
        spec = fit_spec_from_profiles(self.executions(), name="nightly-sort")
        assert spec.name == "nightly-sort"


class TestCLIFitWorkflow:
    def test_fit_then_generate(self, tmp_path, capsys):
        from repro.cli import main
        from repro.trace.schema import load_trace

        recorded = tmp_path / "recorded.json"
        spec_path = tmp_path / "spec.json"
        generated = tmp_path / "generated.json"
        main(["generate", str(recorded), "--jobs", "3", "--workload", "Sort",
              "--seed", "1"])
        assert main(["fit", str(recorded), str(spec_path), "--name", "sortish"]) == 0
        assert "fitted spec 'sortish'" in capsys.readouterr().out
        assert main(["generate", str(generated), "--jobs", "4",
                     "--spec", str(spec_path), "--seed", "2"]) == 0
        jobs = load_trace(generated)
        assert len(jobs) == 4
        assert all(j.profile.name == "sortish" for j in jobs)
        # The generated jobs pass the same-application test vs recordings.
        assert main(["diff-profiles", str(recorded), str(generated)]) == 0

    def test_fit_rejects_mixed_trace(self, tmp_path):
        from repro.cli import main

        mixed = tmp_path / "mixed.json"
        main(["generate", str(mixed), "--jobs", "8", "--workload", "mix", "--seed", "1"])
        with pytest.raises(ValueError, match="same application"):
            main(["fit", str(mixed), str(tmp_path / "out.json")])
