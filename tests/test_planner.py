"""Tests for the bisection-based cluster planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, TraceJob
from repro.planner import ClusterPlanner
from repro.schedulers import MinEDFScheduler

from conftest import make_constant_profile


@pytest.fixture
def batch_trace():
    """Four identical 16x10s-map jobs submitted together."""
    profile = make_constant_profile(num_maps=16, num_reduces=0, map_s=10.0)
    return [TraceJob(profile, 0.0) for _ in range(4)]


class TestMakespanSizing:
    def test_exact_boundary(self, batch_trace):
        # 64 task-slots of work x 10s each = 640 task-seconds; finishing
        # in 40s needs exactly 16 map slots (4 waves of 10s each... with
        # 4 jobs x 16 maps = 64 tasks / 16 slots = 4 waves).
        planner = ClusterPlanner()
        cluster = planner.min_cluster_for_makespan(batch_trace, 40.0)
        assert cluster is not None
        assert cluster.map_slots == 16

    def test_looser_target_needs_fewer_slots(self, batch_trace):
        planner = ClusterPlanner()
        tight = planner.min_cluster_for_makespan(batch_trace, 40.0)
        loose = planner.min_cluster_for_makespan(batch_trace, 160.0)
        assert loose.map_slots < tight.map_slots
        assert loose.map_slots == 4  # 64 tasks / 4 slots = 16 waves = 160s

    def test_infeasible_returns_none(self, batch_trace):
        planner = ClusterPlanner(max_map_slots=128)
        # 10s map duration floors any makespan.
        assert planner.min_cluster_for_makespan(batch_trace, 5.0) is None

    def test_answer_verified_by_replay(self, batch_trace):
        planner = ClusterPlanner()
        cluster = planner.min_cluster_for_makespan(batch_trace, 50.0)
        result = planner.simulate(batch_trace, cluster.map_slots)
        assert result.makespan <= 50.0
        if cluster.map_slots > 1:
            smaller = planner.simulate(batch_trace, cluster.map_slots - 1)
            assert smaller.makespan > 50.0

    def test_validation(self, batch_trace):
        planner = ClusterPlanner()
        with pytest.raises(ValueError):
            planner.min_cluster_for_makespan(batch_trace, 0.0)
        with pytest.raises(ValueError):
            planner.min_cluster_for_makespan([], 10.0)
        with pytest.raises(ValueError):
            ClusterPlanner(reduce_ratio=0.0)
        with pytest.raises(ValueError):
            ClusterPlanner(max_map_slots=0)


class TestDeadlineSizing:
    def deadline_trace(self):
        profile = make_constant_profile(num_maps=16, num_reduces=0, map_s=10.0)
        return [
            TraceJob(profile, 0.0, deadline=45.0),
            TraceJob(profile, 0.0, deadline=90.0),
        ]

    def test_finds_minimal_cluster(self):
        planner = ClusterPlanner()
        cluster = planner.min_cluster_for_deadlines(self.deadline_trace())
        assert cluster is not None
        result = planner.simulate(self.deadline_trace(), cluster.map_slots)
        assert not result.jobs_missed_deadline()

    def test_requires_deadlines(self, batch_trace):
        with pytest.raises(ValueError, match="deadline"):
            ClusterPlanner().min_cluster_for_deadlines(batch_trace)

    def test_works_with_minedf(self):
        planner = ClusterPlanner(scheduler_factory=MinEDFScheduler)
        cluster = planner.min_cluster_for_deadlines(self.deadline_trace())
        assert cluster is not None
        result = planner.simulate(self.deadline_trace(), cluster.map_slots)
        assert not result.jobs_missed_deadline()


class TestUtilitySizing:
    def test_budgeted_misses_allow_smaller_cluster(self):
        profile = make_constant_profile(num_maps=16, num_reduces=0, map_s=10.0)
        trace = [TraceJob(profile, 0.0, deadline=45.0) for _ in range(3)]
        planner = ClusterPlanner()
        strict = planner.min_cluster_for_utility(trace, 0.0)
        relaxed = planner.min_cluster_for_utility(trace, 2.0)
        assert relaxed.map_slots <= strict.map_slots

    def test_negative_budget_rejected(self, batch_trace):
        with pytest.raises(ValueError):
            ClusterPlanner().min_cluster_for_utility(batch_trace, -1.0)


class TestClusterShape:
    def test_reduce_ratio(self):
        planner = ClusterPlanner(reduce_ratio=0.5)
        cluster = planner.cluster_of(10)
        assert cluster == ClusterConfig(10, 5)

    def test_ratio_rounds_up_to_one(self):
        planner = ClusterPlanner(reduce_ratio=0.1)
        assert planner.cluster_of(1).reduce_slots == 1
