"""Tests for profile comparison (the Section II 'same application?' test)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.mrprofiler.compare import compare_profiles
from repro.workloads import app_spec

from conftest import make_constant_profile


class TestCompareProfiles:
    def test_same_app_executions_similar(self):
        rng = np.random.default_rng(0)
        spec = app_spec("WordCount")
        a, b = spec.make_profile(rng), spec.make_profile(rng)
        comparison = compare_profiles(a, b)
        assert comparison.same_application
        assert all(p.kl_divergence < 1.0 for p in comparison.phases)

    @pytest.mark.parametrize("other", ["Sort", "Twitter", "Bayes"])
    def test_different_apps_dissimilar(self, other):
        rng = np.random.default_rng(1)
        a = app_spec("WordCount").make_profile(rng)
        b = app_spec(other).make_profile(rng)
        assert not compare_profiles(a, b).same_application

    def test_three_phases_compared(self):
        rng = np.random.default_rng(2)
        spec = app_spec("Sort")
        comparison = compare_profiles(spec.make_profile(rng), spec.make_profile(rng))
        assert {p.phase for p in comparison.phases} == {"map", "shuffle", "reduce"}

    def test_map_only_profiles_compare_maps(self):
        a = make_constant_profile(num_maps=8, num_reduces=0)
        b = make_constant_profile(num_maps=8, num_reduces=0)
        comparison = compare_profiles(a, b)
        assert [p.phase for p in comparison.phases] == ["map"]
        assert comparison.same_application

    def test_mixed_structures_compare_shared_phases(self):
        a = make_constant_profile(num_maps=8, num_reduces=0)
        b = make_constant_profile(num_maps=8, num_reduces=4)
        comparison = compare_profiles(a, b)
        assert [p.phase for p in comparison.phases] == ["map"]

    def test_no_shared_phases_raises(self):
        a = make_constant_profile(num_maps=8, num_reduces=0)
        b = make_constant_profile(num_maps=0, num_reduces=4)
        with pytest.raises(ValueError, match="no comparable phases"):
            compare_profiles(a, b)

    def test_threshold_validation(self):
        a = make_constant_profile()
        with pytest.raises(ValueError):
            compare_profiles(a, a, kl_threshold=0.0)

    def test_str_shows_verdict(self):
        a = make_constant_profile()
        text = str(compare_profiles(a, a))
        assert "SAME application" in text


class TestCLICommands:
    def test_diff_profiles_exit_codes(self, tmp_path):
        wc = tmp_path / "wc.json"
        sort = tmp_path / "sort.json"
        main(["generate", str(wc), "--jobs", "2", "--workload", "WordCount", "--seed", "1"])
        main(["generate", str(sort), "--jobs", "1", "--workload", "Sort", "--seed", "2"])
        # Same app (two executions within one trace): exit 0.
        assert main(["diff-profiles", str(wc), str(wc), "--job-b", "1"]) == 0
        # Different apps: exit 1.
        assert main(["diff-profiles", str(wc), str(sort)]) == 1

    def test_diff_profiles_bad_index(self, tmp_path, capsys):
        wc = tmp_path / "wc.json"
        main(["generate", str(wc), "--jobs", "1", "--workload", "WordCount"])
        assert main(["diff-profiles", str(wc), str(wc), "--job-b", "9"]) == 2

    def test_validate_command(self, capsys):
        assert main(["validate", "--executions", "1"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "replay error" in out
