"""Tests for kill-based preemption (the paper's Figure 7 'bump' fix).

Paper Section V-B observes that without preemption "the slot is not
available for allocation to the earlier deadline job which just arrived".
The engine's ``preemption=True`` mode plus the preemptive EDF variants
remove that limitation using Hadoop's kill semantics: victims lose their
progress and rerun.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, SimulatorEngine, TraceJob, simulate
from repro.schedulers import FIFOScheduler, MaxEDFScheduler, MinEDFScheduler

from conftest import make_constant_profile, make_random_profile


@pytest.fixture
def run(engine_kind):
    """Preemptive run on the parametrized engine path: since the kernel's
    segmented-replay mode covers live preemption, every behavioural pin
    here holds on both the object loop and the columnar kernel."""

    def _run(trace, scheduler, cluster=ClusterConfig(4, 4), **kw):
        return simulate(
            trace, scheduler, cluster, engine=engine_kind, preemption=True,
            sanitize=False, **kw,
        )

    return _run


@pytest.fixture
def hog_and_urgent():
    """A slot-hogging long job plus an urgent small one arriving later."""
    hog = make_constant_profile(name="hog", num_maps=8, num_reduces=0, map_s=100.0)
    urgent = make_constant_profile(name="urgent", num_maps=4, num_reduces=0, map_s=10.0)
    return [
        TraceJob(hog, 0.0, deadline=500.0),
        TraceJob(urgent, 5.0, deadline=30.0),
    ]


class TestPreemptiveMaxEDF:
    def test_urgent_job_meets_deadline(self, run, hog_and_urgent):
        result = run(hog_and_urgent, MaxEDFScheduler(preemptive=True))
        assert result.jobs[1].completion_time <= 30.0

    def test_without_preemption_urgent_misses(self, hog_and_urgent):
        result = simulate(hog_and_urgent, MaxEDFScheduler(), ClusterConfig(4, 4))
        assert result.jobs[1].completion_time > 30.0

    def test_killed_work_reruns(self, run, hog_and_urgent):
        result = run(hog_and_urgent, MaxEDFScheduler(preemptive=True))
        killed = [r for r in result.task_records if r.killed]
        assert len(killed) == 4  # the urgent job needed 4 slots
        # The hog still completes all its maps.
        assert result.jobs[0].completion_time is not None
        hog_completed = [
            r for r in result.task_records
            if r.job_id == 0 and r.kind == "map" and not r.killed
        ]
        assert len(hog_completed) == 8

    def test_kill_costs_lost_work(self, run, hog_and_urgent):
        """The hog finishes later than without preemption (restarts)."""
        preempted = run(hog_and_urgent, MaxEDFScheduler(preemptive=True))
        clean = simulate(hog_and_urgent, MaxEDFScheduler(), ClusterConfig(4, 4))
        assert preempted.jobs[0].completion_time > clean.jobs[0].completion_time

    def test_earlier_deadline_jobs_never_preempted(self, run):
        """A late-deadline arrival must not disturb earlier-deadline work."""
        early = make_constant_profile(name="early", num_maps=4, num_reduces=0, map_s=50.0)
        late = make_constant_profile(name="late", num_maps=4, num_reduces=0, map_s=10.0)
        trace = [
            TraceJob(early, 0.0, deadline=60.0),
            TraceJob(late, 5.0, deadline=10000.0),
        ]
        result = run(trace, MaxEDFScheduler(preemptive=True))
        assert not any(r.killed for r in result.task_records)
        assert result.jobs[0].completion_time <= 60.0

    def test_name_marks_variant(self):
        assert MaxEDFScheduler(preemptive=True).name == "MaxEDF+P"
        assert MinEDFScheduler(preemptive=True).name == "MinEDF+P"


class TestPreemptiveMinEDF:
    def test_takes_only_its_demand(self, run):
        """MinEDF+P frees only the slots its model demand requires.

        The hog's deadline makes it want 7 of the 8 map slots; the tight
        small job demands 3 but finds only 1 free — exactly 2 kills.
        """
        hog = make_constant_profile(name="hog", num_maps=16, num_reduces=0, map_s=100.0)
        small = make_constant_profile(name="small", num_maps=8, num_reduces=0, map_s=10.0)
        trace = [
            TraceJob(hog, 0.0, deadline=280.0),
            TraceJob(small, 5.0, deadline=45.0),
        ]
        result = run(trace, MinEDFScheduler(preemptive=True), ClusterConfig(8, 8))
        killed = sum(1 for r in result.task_records if r.killed)
        assert killed == 2
        assert result.jobs[1].completion_time <= 45.0

    def test_helps_urgent_arrivals_into_busy_cluster(self, run):
        """The paper's bump scenario: tight-deadline jobs arriving while
        loose background work holds the slots.  Preemption must reduce
        the *urgent* jobs' deadline misses; the background jobs pay with
        rerun work (that trade-off is the point of the mechanism)."""
        cluster = ClusterConfig(8, 8)
        trace = []
        # Background stream: each job's deadline makes it demand ~5 of
        # the 8 slots, so together they saturate the cluster with
        # long-running (90s) map tasks.
        for i in range(4):
            bg = make_constant_profile(name=f"bg{i}", num_maps=24, num_reduces=0, map_s=90.0)
            t = i * 15.0
            trace.append(TraceJob(bg, t, deadline=t + 500.0))
        # Tight small arrivals mid-burst: without preemption they wait up
        # to 90s for a background map to free a slot.
        urgent_ids = []
        for i in range(3):
            urgent = make_constant_profile(
                name=f"urgent{i}", num_maps=6, num_reduces=0, map_s=8.0
            )
            submit = 70.0 + i * 30.0
            trace.append(TraceJob(urgent, submit, deadline=submit + 40.0))
            urgent_ids.append(len(trace) - 1)

        plain = simulate(trace, MinEDFScheduler(), cluster, record_tasks=False)
        preempt = run(
            trace, MinEDFScheduler(preemptive=True), cluster, record_tasks=False
        )
        urgent_plain = sum(plain.jobs[i].relative_deadline_exceeded() for i in urgent_ids)
        urgent_preempt = sum(
            preempt.jobs[i].relative_deadline_exceeded() for i in urgent_ids
        )
        assert urgent_plain > 0  # the bump exists without preemption
        assert urgent_preempt < urgent_plain


class TestPreemptionEngineMechanics:
    def test_filler_reduce_can_be_killed(self, run):
        """Killing a first-wave filler must cancel its rewrite."""
        victim = make_constant_profile(
            name="victim", num_maps=8, num_reduces=4, map_s=50.0,
            first_shuffle_s=5.0, reduce_s=3.0,
        )
        urgent = make_constant_profile(
            name="urgent", num_maps=0, num_reduces=4,
            first_shuffle_s=2.0, reduce_s=1.0,
        )
        trace = [
            TraceJob(victim, 0.0, deadline=10000.0),
            TraceJob(urgent, 20.0, deadline=30.0),
        ]
        result = run(
            trace, MaxEDFScheduler(preemptive=True), ClusterConfig(4, 4),
            min_map_percent_completed=0.0,
        )
        assert result.jobs[1].completion_time <= 30.0
        # Victim completes all reduces despite the filler kills.
        assert result.jobs[0].completion_time is not None
        done = [
            r for r in result.task_records
            if r.job_id == 0 and r.kind == "reduce" and not r.killed
        ]
        assert len(done) == 4

    def test_stale_departures_ignored(self, run, hog_and_urgent):
        """Event accounting stays consistent: killed attempts' departure
        events fire but change nothing."""
        result = run(hog_and_urgent, MaxEDFScheduler(preemptive=True))
        # Every job's task counts balance out.
        for job in result.jobs:
            completed = [
                r for r in result.task_records
                if r.job_id == job.job_id and not r.killed
            ]
            assert len(completed) == job.num_maps + job.num_reduces

    def test_preemption_off_identical_to_before(self, rng):
        """preemption=False must not change any schedule."""
        profiles = [make_random_profile(rng, f"j{i}", 12, 6) for i in range(4)]
        trace = [TraceJob(p, float(i * 7), deadline=2000.0) for i, p in enumerate(profiles)]
        plain = simulate(trace, MinEDFScheduler(), ClusterConfig(8, 8))
        off = SimulatorEngine(
            ClusterConfig(8, 8), MinEDFScheduler(), preemption=False
        ).run(trace)
        assert plain.completion_times() == off.completion_times()

    def test_preemptive_scheduler_needs_engine_flag(self, hog_and_urgent):
        """Without engine preemption, the hook is never consulted: the
        preemptive scheduler degrades to its plain variant."""
        result = simulate(
            hog_and_urgent, MaxEDFScheduler(preemptive=True), ClusterConfig(4, 4)
        )
        assert not any(r.killed for r in result.task_records)

    def test_fifo_unaffected_by_preemption_mode(self, run, rng):
        profiles = [make_random_profile(rng, f"j{i}", 10, 5) for i in range(3)]
        trace = [TraceJob(p, float(i)) for i, p in enumerate(profiles)]
        plain = simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))
        with_flag = run(trace, FIFOScheduler())
        assert plain.completion_times() == with_flag.completion_times()
