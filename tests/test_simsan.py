"""Tests for the runtime simulation sanitizer (``repro.sanitize``).

Covers the three ways simsan turns on (env var, constructor flag,
explicit instance), that clean runs on every scheduling policy stay
clean, that each check family fires on deliberately broken engine
state, the dual-run divergence detector (including localising the
first diverging event), and the ``simmr check`` / ``replay --sanitize``
CLI surface.
"""

from __future__ import annotations

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import ClusterConfig, SimulatorEngine, TraceJob
from repro.core.job import Job, JobState
from repro.sanitize import (
    DualRunOutcome,
    EventDigest,
    Sanitizer,
    SimsanViolation,
    compare_digests,
    dual_run,
)
from repro.sanitize.check import default_check_trace, run_check
from repro.schedulers import FIFOScheduler, MaxEDFScheduler, make_scheduler

from conftest import make_constant_profile

REPO_ROOT = Path(__file__).resolve().parent.parent

# Engine event-type ints (mirrors the engine's hot-loop constants).
MAP_DEP, ALL_MAPS, RED_DEP, JOB_DEP, JOB_ARR = 0, 1, 2, 3, 4


def fresh_engine(**kw):
    kw.setdefault("sanitize", False)
    return SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler(), **kw)


def make_job(num_maps=4, num_reduces=2):
    profile = make_constant_profile(num_maps=num_maps, num_reduces=num_reduces)
    return Job(0, TraceJob(profile, 0.0))


def check_ids(san):
    return [v.check_id for v in san.violations]


# --------------------------------------------------------------------- #
# opt-in mechanisms
# --------------------------------------------------------------------- #


class TestOptIn:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("SIMMR_SANITIZE", raising=False)
        assert fresh_engine(sanitize=None).sanitizer is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("SIMMR_SANITIZE", "1")
        engine = fresh_engine(sanitize=None)
        assert isinstance(engine.sanitizer, Sanitizer)
        assert engine.sanitizer.fail_fast

    @pytest.mark.parametrize("value", ["", "0", "false", "False"])
    def test_env_var_falsey_values(self, monkeypatch, value):
        monkeypatch.setenv("SIMMR_SANITIZE", value)
        assert fresh_engine(sanitize=None).sanitizer is None

    def test_sanitize_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("SIMMR_SANITIZE", "1")
        assert fresh_engine(sanitize=False).sanitizer is None

    def test_sanitize_true_forces_on(self, monkeypatch):
        monkeypatch.delenv("SIMMR_SANITIZE", raising=False)
        assert isinstance(fresh_engine(sanitize=True).sanitizer, Sanitizer)

    def test_explicit_sanitizer_used_verbatim(self, monkeypatch):
        monkeypatch.delenv("SIMMR_SANITIZE", raising=False)
        custom = Sanitizer(fail_fast=False)
        engine = SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler(), sanitizer=custom)
        assert engine.sanitizer is custom

    def test_sanitize_false_beats_explicit_sanitizer(self):
        custom = Sanitizer(fail_fast=False)
        engine = SimulatorEngine(
            ClusterConfig(4, 4), FIFOScheduler(), sanitizer=custom, sanitize=False
        )
        assert engine.sanitizer is None


# --------------------------------------------------------------------- #
# clean runs stay clean — and identical to unsanitized runs
# --------------------------------------------------------------------- #


class TestCleanRuns:
    @pytest.mark.parametrize("name", ["fifo", "fair", "maxedf", "minedf"])
    def test_sanitized_run_has_no_violations(self, name):
        trace = default_check_trace(jobs=8, seed=3)
        san = Sanitizer(fail_fast=False)
        engine = SimulatorEngine(ClusterConfig(32, 32), make_scheduler(name), sanitizer=san)
        engine.run(trace)
        assert san.violations == []

    def test_preemptive_run_has_no_violations(self):
        trace = default_check_trace(jobs=8, seed=5)
        san = Sanitizer(fail_fast=False)
        engine = SimulatorEngine(
            ClusterConfig(16, 16),
            MaxEDFScheduler(preemptive=True),
            preemption=True,
            sanitizer=san,
        )
        engine.run(trace)
        assert san.violations == []

    def test_sanitized_run_matches_unsanitized(self):
        trace = default_check_trace(jobs=8, seed=3)
        plain = SimulatorEngine(ClusterConfig(32, 32), FIFOScheduler(), sanitize=False)
        checked = SimulatorEngine(ClusterConfig(32, 32), FIFOScheduler(), sanitize=True)
        a, b = plain.run(trace), checked.run(trace)
        assert a.makespan == b.makespan
        assert a.events_processed == b.events_processed
        assert [j.completion_time for j in a.jobs] == [j.completion_time for j in b.jobs]

    def test_sanitize_composes_with_record_events(self):
        profile = make_constant_profile(num_maps=2, num_reduces=1)
        engine = fresh_engine(sanitize=True, record_events=True)
        result = engine.run([TraceJob(profile, 0.0)])
        assert len(result.event_log) == result.events_processed

    def test_rerun_resets_sanitizer_state(self):
        trace = [TraceJob(make_constant_profile(num_maps=2, num_reduces=1), 0.0)]
        san = Sanitizer(fail_fast=False, digest=EventDigest())
        engine = SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler(), sanitizer=san)
        engine.run(trace)
        first = (san.digest.hexdigest(), san.digest.count)
        engine.run(trace)
        assert san.violations == []
        assert (san.digest.hexdigest(), san.digest.count) == first


# --------------------------------------------------------------------- #
# each check family fires on deliberately broken state
# --------------------------------------------------------------------- #


class TestEventChecks:
    def test_evt001_pop_out_of_order(self):
        san = Sanitizer(fail_fast=False)
        san.begin_run(fresh_engine(), [])
        san.observe_pop(5.0, JOB_ARR, 0, 0, -1)
        san.observe_pop(3.0, JOB_ARR, 1, 0, -1)
        assert check_ids(san) == ["EVT001"]

    def test_evt001_type_priority_tiebreak(self):
        # Same timestamp, but a lower-priority type popped first.
        san = Sanitizer(fail_fast=False)
        san.begin_run(fresh_engine(), [])
        san.observe_pop(5.0, JOB_ARR, 0, 0, -1)
        san.observe_pop(5.0, MAP_DEP, 1, 0, 0)
        assert check_ids(san) == ["EVT001"]

    def test_evt002_negative_time_raises_fail_fast(self):
        san = Sanitizer()
        san.begin_run(fresh_engine(), [])
        with pytest.raises(SimsanViolation) as exc:
            san.observe_pop(-1.0, JOB_ARR, 0, 0, -1)
        violation = exc.value.violation
        assert violation.check_id == "EVT002"
        assert violation.event_index == 1
        assert "EVT002" in str(exc.value) and "t=-1" in str(exc.value)


class TestSlotChecks:
    def test_slt001_leaked_free_slot(self):
        engine = fresh_engine()
        san = Sanitizer(fail_fast=False)
        san.begin_run(engine, [])
        engine._free_map_slots -= 1  # a slot vanished with nothing running
        san.observe_handled(engine, make_job(), JOB_ARR)
        assert check_ids(san) == ["SLT001"]

    def test_slt001_free_slots_over_capacity(self):
        engine = fresh_engine()
        san = Sanitizer(fail_fast=False)
        san.begin_run(engine, [])
        engine._free_reduce_slots = engine.cluster.reduce_slots + 2
        san.observe_handled(engine, make_job(), JOB_ARR)
        assert check_ids(san) == ["SLT001"]


class TestLifecycleChecks:
    def observe(self, san, engine, job, etype=JOB_ARR):
        san.observe_handled(engine, job, etype)

    def test_lif001_completed_exceeds_dispatched(self):
        engine, san, job = fresh_engine(), Sanitizer(fail_fast=False), make_job()
        san.begin_run(engine, [])
        job.maps_completed = 1
        self.observe(san, engine, job, MAP_DEP)
        assert check_ids(san) == ["LIF001"]

    def test_lif001_completed_exceeds_total(self):
        engine, san, job = fresh_engine(), Sanitizer(fail_fast=False), make_job(num_maps=2)
        san.begin_run(engine, [])
        job.maps_dispatched = job.maps_completed = 2
        self.observe(san, engine, job, MAP_DEP)
        san.violations.clear()
        job.maps_completed = 3  # a task "completed" twice
        self.observe(san, engine, job, MAP_DEP)
        assert "LIF001" in check_ids(san)

    def test_lif002_two_completions_in_one_event(self):
        engine, san, job = fresh_engine(), Sanitizer(fail_fast=False), make_job()
        san.begin_run(engine, [])
        job.maps_dispatched = job.maps_completed = 2
        self.observe(san, engine, job, MAP_DEP)
        assert check_ids(san) == ["LIF002"]

    def test_lif002_completion_outside_departure_event(self):
        engine, san, job = fresh_engine(), Sanitizer(fail_fast=False), make_job()
        san.begin_run(engine, [])
        job.reduces_dispatched = job.reduces_completed = 1
        self.observe(san, engine, job, JOB_ARR)  # not a reduce departure
        assert check_ids(san) == ["LIF002"]

    def test_lif003_illegal_state_jump(self):
        engine, san, job = fresh_engine(), Sanitizer(fail_fast=False), make_job()
        san.begin_run(engine, [])
        job.state = JobState.COMPLETED  # PENDING -> COMPLETED, skipping RUNNING
        self.observe(san, engine, job)
        assert "LIF003" in check_ids(san)

    def test_lif004_completion_time_rewritten(self):
        engine, san, job = fresh_engine(), Sanitizer(fail_fast=False), make_job()
        san.begin_run(engine, [])
        job.state = JobState.RUNNING
        job.completion_time = 5.0
        self.observe(san, engine, job)
        assert san.violations == []
        job.completion_time = 6.0
        self.observe(san, engine, job)
        assert check_ids(san) == ["LIF004"]

    def test_lif005_dispatch_regression_without_preemption(self):
        engine, san, job = fresh_engine(), Sanitizer(fail_fast=False), make_job()
        san.begin_run(engine, [])
        job.state = JobState.RUNNING
        job.maps_dispatched = 2
        self.observe(san, engine, job)
        job.maps_dispatched = 1
        self.observe(san, engine, job)
        assert check_ids(san) == ["LIF005"]

    def test_lif005_waived_with_preemption_enabled(self):
        engine = fresh_engine(preemption=True)
        san, job = Sanitizer(fail_fast=False), make_job()
        san.begin_run(engine, [])
        job.state = JobState.RUNNING
        job.maps_dispatched = 2
        self.observe(san, engine, job)
        job.maps_dispatched = 1
        self.observe(san, engine, job)
        assert san.violations == []


class TestEndRunChecks:
    """Run a real trace clean, then corrupt the engine's records."""

    def finished_engine(self):
        engine = fresh_engine()
        profile = make_constant_profile(num_maps=4, num_reduces=2)
        engine.run([TraceJob(profile, 0.0)])
        return engine

    def end_run(self, engine):
        san = Sanitizer(fail_fast=False)
        san.end_run(engine)
        return san

    def reduce_record(self, engine):
        return next(r for r in engine._records if r.kind == "reduce")

    def test_clean_run_passes_end_checks(self):
        assert self.end_run(self.finished_engine()).violations == []

    def test_fin001_slot_not_returned(self):
        engine = self.finished_engine()
        engine._free_map_slots -= 1
        san = self.end_run(engine)
        assert check_ids(san) == ["FIN001"]
        assert "map slot leaked" in san.violations[0].message

    def test_ovl001_unrewritten_filler(self):
        engine = self.finished_engine()
        rec = self.reduce_record(engine)
        rec.end = math.inf
        san = self.end_run(engine)
        assert check_ids(san) == ["OVL001"]
        assert "infinite filler" in san.violations[0].message

    def test_ovl001_phase_boundary_out_of_order(self):
        engine = self.finished_engine()
        rec = self.reduce_record(engine)
        rec.shuffle_end = rec.start - 1.0
        san = self.end_run(engine)
        assert "OVL001" in check_ids(san)

    def test_ovl001_first_wave_started_after_map_stage(self):
        engine = self.finished_engine()
        rec = self.reduce_record(engine)
        assert rec.first_wave  # 4 slots, slow-start 5%: reduces overlap maps
        rec.start = rec.shuffle_end + 0.5  # "started" after the map stage end
        san = self.end_run(engine)
        assert "OVL001" in check_ids(san)
        assert any("first-wave" in v.message for v in san.violations)

    def test_ovl002_map_duration_disagrees_with_profile(self):
        engine = self.finished_engine()
        rec = next(r for r in engine._records if r.kind == "map")
        rec.end += 1.0
        san = self.end_run(engine)
        assert check_ids(san) == ["OVL002"]

    def test_ovl002_reduce_phase_duration_disagrees(self):
        engine = self.finished_engine()
        rec = self.reduce_record(engine)
        rec.shuffle_end += 0.5  # shrinks the reduce phase below the profile
        san = self.end_run(engine)
        assert "OVL002" in check_ids(san)

    def test_killed_records_are_exempt(self):
        engine = self.finished_engine()
        rec = self.reduce_record(engine)
        rec.shuffle_end = rec.start - 1.0
        rec.killed = True  # a preempted attempt's bounds are not checked
        assert self.end_run(engine).violations == []


class TestEndToEnd:
    def test_leaky_engine_trips_slt001_during_run(self):
        class LeakyEngine(SimulatorEngine):
            def _dispatch_map(self, job):
                super()._dispatch_map(job)
                self._free_map_slots += 1  # dispatch without consuming a slot

        engine = LeakyEngine(ClusterConfig(4, 4), FIFOScheduler(), sanitize=True)
        profile = make_constant_profile(num_maps=4, num_reduces=2)
        with pytest.raises(SimsanViolation, match="SLT001"):
            engine.run([TraceJob(profile, 0.0)])

    def test_clock_rewinding_engine_trips_evt001(self):
        class RewindingEngine(SimulatorEngine):
            def _on_map_departure(self, job, index, seq):
                super()._on_map_departure(job, index, seq)
                self._push_event(self._now - 1.0, JOB_DEP, job.job_id, -1)

        engine = RewindingEngine(ClusterConfig(4, 4), FIFOScheduler(), sanitize=True)
        profile = make_constant_profile(num_maps=4, num_reduces=2)
        with pytest.raises(SimsanViolation, match="EVT001"):
            engine.run([TraceJob(profile, 0.0)])


# --------------------------------------------------------------------- #
# event digests and dual-run divergence
# --------------------------------------------------------------------- #


class TestEventDigest:
    def test_reset_restores_fresh_fingerprint(self):
        digest = EventDigest()
        empty = digest.hexdigest()
        digest.update(1.0, MAP_DEP, 0, 2)
        assert digest.count == 1 and digest.hexdigest() != empty
        digest.reset()
        assert digest.count == 0 and digest.hexdigest() == empty

    def test_identical_streams_compare_equal(self):
        a, b = EventDigest(), EventDigest()
        for d in (a, b):
            d.update(1.0, MAP_DEP, 0, 2)
            d.update(2.0, RED_DEP, 0, 0)
        report = compare_digests(a, b)
        assert not report.diverged
        assert "identical" in report.describe()

    def test_order_matters(self):
        a, b = EventDigest(), EventDigest()
        a.update(1.0, MAP_DEP, 0, 2)
        a.update(2.0, RED_DEP, 0, 0)
        b.update(2.0, RED_DEP, 0, 0)
        b.update(1.0, MAP_DEP, 0, 2)
        report = compare_digests(a, b)
        assert report.diverged and report.first_index == 0

    def test_keep_events_false_detects_but_cannot_localise(self):
        a = EventDigest(keep_events=False)
        b = EventDigest(keep_events=False)
        a.update(1.0, MAP_DEP, 0, 2)
        b.update(1.0, MAP_DEP, 0, 3)
        report = compare_digests(a, b)
        assert report.diverged and report.first_index is None
        assert "DIV001" in report.describe()

    def test_length_mismatch_diverges(self):
        a, b = EventDigest(), EventDigest()
        a.update(1.0, MAP_DEP, 0, 2)
        b.update(1.0, MAP_DEP, 0, 2)
        b.update(2.0, RED_DEP, 0, 0)
        report = compare_digests(a, b)
        assert report.diverged and report.first_index == 1
        assert report.event_a is None and report.event_b == (2.0, RED_DEP, 0, 0)
        assert "<stream ended>" in report.describe()


class TestDualRun:
    def small_trace(self):
        return [
            TraceJob(
                make_constant_profile(
                    name=f"j{i}", num_maps=6, num_reduces=2, map_s=10.0 + i
                ),
                0.0,
            )
            for i in range(4)
        ]

    def test_deterministic_policy_replays_identically(self):
        outcome = dual_run(
            lambda: SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler(), sanitize=False),
            self.small_trace(),
        )
        assert isinstance(outcome, DualRunOutcome)
        assert outcome.ok and not outcome.report.diverged
        assert outcome.results[0].makespan == outcome.results[1].makespan
        assert outcome.violations == ((), ())

    def test_hidden_global_state_diverges_with_first_event_named(self):
        spec = importlib.util.spec_from_file_location(
            "diverging_scheduler",
            REPO_ROOT / "tests" / "fixtures" / "diverging_scheduler.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        outcome = dual_run(
            lambda: SimulatorEngine(
                ClusterConfig(2, 2), module.DivergingScheduler(), sanitize=False
            ),
            self.small_trace(),
        )
        report = outcome.report
        assert report.diverged and not outcome.ok
        assert report.digest_a != report.digest_b
        # Event streams were kept, so the first divergence is localised.
        assert report.first_index is not None
        assert report.event_a != report.event_b
        described = report.describe()
        assert "DIV001" in described and "diverged at event #" in described
        # Both runs individually satisfied every invariant — the *pair*
        # is what is broken, which no single-run check can see.
        assert outcome.violations == ((), ())
        round_tripped = json.loads(json.dumps(report.to_dict()))
        assert round_tripped["diverged"] is True
        assert round_tripped["first_index"] == report.first_index


# --------------------------------------------------------------------- #
# the combined gate: run_check and the CLI
# --------------------------------------------------------------------- #


class TestRunCheck:
    def test_dynamic_half_passes_on_builtin_policies(self):
        report = run_check(schedulers=("fifo", "minedf"), jobs=5, seed=2, static=False)
        assert report.ok
        assert [r.scheduler for r in report.runs] == ["fifo", "minedf"]
        assert all(r.events > 0 and not r.divergence.diverged for r in report.runs)
        assert "simmr check: PASS" in report.render_text()

    def test_static_half_reports_fixture_findings(self):
        report = run_check(
            [REPO_ROOT / "tests" / "fixtures" / "bad_scheduler.py"], dynamic=False
        )
        assert not report.ok and report.findings and not report.runs
        text = report.render_text()
        assert "simmr check: FAIL" in text and "DET001" in text

    def test_to_dict_round_trips_through_json(self):
        report = run_check(schedulers=("fifo",), jobs=3, seed=2, static=False)
        data = json.loads(report.render_json())
        assert data["ok"] is True
        assert data["dynamic"][0]["scheduler"] == "fifo"
        assert data["dynamic"][0]["divergence"]["diverged"] is False


class TestCheckCli:
    def test_check_dynamic_only_passes(self, capsys):
        rc = main(["check", "--dynamic-only", "--schedulers", "fifo", "--jobs", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "simmr check: PASS" in out

    def test_check_static_only_fails_on_fixture(self, capsys):
        rc = main(["check", "--static-only", "tests/fixtures/bad_scheduler.py"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "simmr check: FAIL" in out

    def test_check_exclusive_flags_usage_error(self, capsys):
        rc = main(["check", "--static-only", "--dynamic-only"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_check_json_format(self, capsys):
        rc = main(
            ["check", "--dynamic-only", "--schedulers", "fifo", "--jobs", "3",
             "--format", "json"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True and len(data["dynamic"]) == 1


class TestReplaySanitizeCli:
    def test_replay_with_sanitize_flag(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["generate", str(trace_path), "--jobs", "3", "--seed", "1"]) == 0
        assert main(["replay", str(trace_path), "--sanitize"]) == 0
        assert "makespan" in capsys.readouterr().out
