"""Tests for the GridMix workload and the FLEX-style scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, Job, TraceJob, simulate
from repro.schedulers import FIFOScheduler, FlexScheduler, FLEX_METRICS
from repro.trace.arrivals import ExponentialArrivals, PeriodicArrivals
from repro.workloads import GRIDMIX_MIX, gridmix_specs, gridmix_trace_generator

from conftest import make_constant_profile


class TestGridMix:
    def test_mix_covers_all_specs(self):
        assert set(GRIDMIX_MIX) == set(gridmix_specs())
        assert sum(GRIDMIX_MIX.values()) == pytest.approx(1.0)

    def test_small_jobs_dominate(self):
        gen = gridmix_trace_generator(PeriodicArrivals(1.0), seed=0)
        trace = gen.generate(400)
        names = [j.profile.name for j in trace]
        small = sum(1 for n in names if n == "webdataScan.small")
        monster = sum(1 for n in names if n == "monsterQuery.large")
        assert small > 100
        assert monster < small

    def test_scan_jobs_are_map_only(self, rng):
        spec = gridmix_specs()["webdataScan.small"]
        profile = spec.make_profile(rng)
        assert profile.num_reduces == 0

    def test_sorts_have_reduces(self, rng):
        profile = gridmix_specs()["streamSort.large"].make_profile(rng)
        assert profile.num_reduces >= 60

    def test_trace_is_simulatable(self):
        gen = gridmix_trace_generator(ExponentialArrivals(60.0), seed=1)
        trace = gen.generate(25)
        result = simulate(trace, FIFOScheduler(), ClusterConfig(64, 64), record_tasks=False)
        assert len(result.completion_times()) == 25


class TestFlexScheduler:
    def make_jobs(self):
        small = make_constant_profile(name="small", num_maps=4, num_reduces=0, map_s=5.0)
        big = make_constant_profile(name="big", num_maps=40, num_reduces=0, map_s=20.0)
        return (
            Job(0, TraceJob(big, 0.0, deadline=500.0)),
            Job(1, TraceJob(small, 1.0, deadline=100.0)),
        )

    def test_metric_validation(self):
        with pytest.raises(ValueError, match="unknown FLEX metric"):
            FlexScheduler("throughput")
        for metric in FLEX_METRICS:
            assert metric in FlexScheduler(metric).name

    def test_avg_response_prefers_small_jobs(self):
        big, small = self.make_jobs()
        sched = FlexScheduler("avg_response")
        assert sched.choose_next_map_task([big, small]) is small

    def test_makespan_prefers_large_jobs(self):
        big, small = self.make_jobs()
        sched = FlexScheduler("makespan")
        assert sched.choose_next_map_task([big, small]) is big

    def test_deadline_metric_is_edf(self):
        big, small = self.make_jobs()
        sched = FlexScheduler("deadline")
        assert sched.choose_next_map_task([big, small]) is small  # deadline 100 < 500

    def test_max_stretch_protects_waiting_small_jobs(self):
        big, small = self.make_jobs()
        sched = FlexScheduler("max_stretch")
        # Simulate time passing: both waited since submission, but the
        # small job's wait is a larger multiple of its size.
        sched.on_job_arrival(small, 50.0, ClusterConfig(4, 4))
        assert sched.choose_next_map_task([big, small]) is small

    def test_remaining_work_updates_priorities(self):
        big, small = self.make_jobs()
        sched = FlexScheduler("avg_response")
        # After most of the big job completes, it becomes the smaller
        # remaining-work job.
        big.maps_completed = 39
        assert sched.choose_next_map_task([big, small]) is big

    def test_empty_queue(self):
        sched = FlexScheduler()
        assert sched.choose_next_map_task([]) is None
        assert sched.choose_next_reduce_task([]) is None

    def test_avg_response_beats_fifo_on_mean_completion(self):
        """SRPT ordering should reduce mean job duration on a bursty mix."""
        small = make_constant_profile(name="s", num_maps=4, num_reduces=0, map_s=5.0)
        big = make_constant_profile(name="b", num_maps=64, num_reduces=0, map_s=30.0)
        trace = [TraceJob(big, 0.0), TraceJob(small, 1.0), TraceJob(small, 2.0)]
        cluster = ClusterConfig(8, 8)
        fifo = simulate(trace, FIFOScheduler(), cluster, record_tasks=False)
        flex = simulate(trace, FlexScheduler("avg_response"), cluster, record_tasks=False)
        mean = lambda r: np.mean(list(r.durations().values()))
        assert mean(flex) < mean(fifo)
