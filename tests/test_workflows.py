"""Tests for job dependencies and multi-job workflows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, TraceJob, simulate
from repro.schedulers import FIFOScheduler
from repro.trace.distributions import Constant, Uniform
from repro.trace.schema import trace_from_dict, trace_to_dict
from repro.trace.synthetic import SyntheticJobSpec
from repro.trace.workflows import WorkflowSpec, WorkflowStage, chain

from conftest import make_constant_profile


def spec(name: str = "s", maps: int = 4, map_s: float = 10.0) -> SyntheticJobSpec:
    return SyntheticJobSpec(
        name=name,
        num_maps=maps,
        num_reduces=0,
        map_durations=Constant(map_s),
        typical_shuffle=Constant(1.0),
        reduce_durations=Constant(1.0),
    )


class TestEngineDependencies:
    def test_child_waits_for_parent(self):
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        trace = [
            TraceJob(profile, 0.0),
            TraceJob(profile, 0.0, depends_on=0),
        ]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        # Plenty of slots, but the child only starts after the parent.
        assert result.jobs[0].completion_time == pytest.approx(10.0)
        assert result.jobs[1].start_time == pytest.approx(10.0)
        assert result.jobs[1].completion_time == pytest.approx(20.0)

    def test_nominal_submit_still_respected(self):
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        trace = [
            TraceJob(profile, 0.0),
            TraceJob(profile, 50.0, depends_on=0),  # lag beyond parent end
        ]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        assert result.jobs[1].start_time == pytest.approx(50.0)

    def test_diamond_out_edges(self):
        """One parent can release several children."""
        profile = make_constant_profile(num_maps=2, num_reduces=0, map_s=5.0)
        trace = [
            TraceJob(profile, 0.0),
            TraceJob(profile, 0.0, depends_on=0),
            TraceJob(profile, 0.0, depends_on=0),
        ]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        assert result.jobs[1].start_time == pytest.approx(5.0)
        assert result.jobs[2].start_time == pytest.approx(5.0)

    def test_chain_of_three(self):
        profile = make_constant_profile(num_maps=2, num_reduces=0, map_s=5.0)
        trace = [
            TraceJob(profile, 0.0),
            TraceJob(profile, 0.0, depends_on=0),
            TraceJob(profile, 0.0, depends_on=1),
        ]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        assert result.jobs[2].completion_time == pytest.approx(15.0)

    def test_out_of_range_dependency_rejected(self):
        profile = make_constant_profile()
        trace = [TraceJob(profile, 0.0, depends_on=5)]
        with pytest.raises(ValueError, match="depends on index 5"):
            simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))

    def test_self_dependency_rejected(self):
        profile = make_constant_profile()
        with pytest.raises(ValueError, match="depends on itself"):
            simulate(
                [TraceJob(profile, 0.0, depends_on=0)],
                FIFOScheduler(),
                ClusterConfig(8, 8),
            )

    def test_cycle_rejected(self):
        profile = make_constant_profile()
        trace = [
            TraceJob(profile, 0.0, depends_on=1),
            TraceJob(profile, 0.0, depends_on=0),
        ]
        with pytest.raises(ValueError, match="cycle"):
            simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))

    def test_negative_dependency_rejected(self):
        profile = make_constant_profile()
        with pytest.raises(ValueError, match="depends_on"):
            TraceJob(profile, 0.0, depends_on=-1)

    def test_schema_round_trip_preserves_edges(self):
        profile = make_constant_profile()
        trace = [TraceJob(profile, 0.0), TraceJob(profile, 1.0, depends_on=0)]
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt[1].depends_on == 0
        assert rebuilt[0].depends_on is None


class TestWorkflowSpec:
    def test_linear_chain(self, rng):
        wf = chain("tfidf", [spec("a"), spec("b"), spec("c")])
        jobs = wf.instantiate(0.0, rng)
        assert len(jobs) == 3
        assert jobs[0].depends_on is None
        assert jobs[1].depends_on == 0
        assert jobs[2].depends_on == 1
        assert jobs[1].profile.name == "tfidf/stage1"

    def test_base_index_offsets_edges(self, rng):
        wf = chain("w", [spec(), spec()])
        jobs = wf.instantiate(0.0, rng, base_index=10)
        assert jobs[1].depends_on == 10

    def test_deadline_applies_to_final_stage(self, rng):
        wf = chain("w", [spec(), spec()])
        jobs = wf.instantiate(0.0, rng, deadline=1000.0)
        assert jobs[0].deadline is None
        assert jobs[1].deadline == 1000.0

    def test_lag_shifts_nominal_submit(self, rng):
        wf = chain("w", [spec(), spec()], lag=30.0)
        jobs = wf.instantiate(5.0, rng)
        assert jobs[0].submit_time == 5.0
        assert jobs[1].submit_time == 35.0

    def test_fanout_stages(self, rng):
        wf = WorkflowSpec(
            "fan",
            [
                WorkflowStage("extract", spec("e")),
                WorkflowStage("left", spec("l"), after="extract"),
                WorkflowStage("right", spec("r"), after="extract"),
            ],
        )
        jobs = wf.instantiate(0.0, rng)
        assert jobs[1].depends_on == 0
        assert jobs[2].depends_on == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="no stages"):
            WorkflowSpec("empty", [])
        with pytest.raises(ValueError, match="duplicate"):
            WorkflowSpec("d", [WorkflowStage("a", spec()), WorkflowStage("a", spec())])
        with pytest.raises(ValueError, match="not an earlier stage"):
            WorkflowSpec("b", [WorkflowStage("a", spec(), after="ghost")])
        with pytest.raises(ValueError, match="lag"):
            WorkflowStage("a", spec(), lag=-1.0)
        with pytest.raises(ValueError):
            chain("c", [])

    def test_workflow_end_to_end(self, rng):
        """A three-stage pipeline replays with stage-serialized timing."""
        wf = chain(
            "tfidf",
            [spec("tf", 8, 10.0), spec("df", 4, 5.0), spec("idf", 2, 5.0)],
            stage_names=["tf", "df", "idf"],
        )
        trace = wf.instantiate(0.0, rng)
        result = simulate(trace, FIFOScheduler(), ClusterConfig(16, 16))
        assert result.jobs[2].completion_time == pytest.approx(20.0)
        # Stages never overlap.
        assert result.jobs[1].start_time >= result.jobs[0].completion_time
        assert result.jobs[2].start_time >= result.jobs[1].completion_time
