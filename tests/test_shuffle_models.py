"""Tests for pluggable shuffle models (the network-integration seam)."""

from __future__ import annotations

import pytest

from repro.core import (
    ClusterConfig,
    NetworkShuffleModel,
    ShuffleContext,
    SimulatorEngine,
    TraceJob,
    TraceShuffleModel,
    simulate,
)
from repro.schedulers import FIFOScheduler

from conftest import make_constant_profile


def run_with_model(profile, model, map_slots=4, reduce_slots=4, **kw):
    engine = SimulatorEngine(
        ClusterConfig(map_slots, reduce_slots),
        FIFOScheduler(),
        shuffle_model=model,
        **kw,
    )
    return engine.run([TraceJob(profile, 0.0)])


class TestTraceShuffleModel:
    def test_equals_default_engine_behaviour(self):
        profile = make_constant_profile(
            num_maps=8, num_reduces=4, map_s=10.0, first_shuffle_s=5.0,
            typical_shuffle_s=4.0, reduce_s=3.0,
        )
        default = simulate([TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(4, 2))
        explicit = run_with_model(profile, TraceShuffleModel(), 4, 2)
        assert default.completion_times() == explicit.completion_times()

    def test_first_vs_typical_selection(self):
        profile = make_constant_profile(first_shuffle_s=9.0, typical_shuffle_s=2.0)
        from repro.core.job import Job

        job = Job(0, TraceJob(profile, 0.0))
        model = TraceShuffleModel()
        first = model.shuffle_duration(ShuffleContext(job, 0, True, 1))
        typical = model.shuffle_duration(ShuffleContext(job, 0, False, 1))
        assert first == 9.0
        assert typical == 2.0


class TestNetworkShuffleModel:
    def test_duration_is_bytes_over_bandwidth(self):
        model = NetworkShuffleModel(
            bytes_per_reduce=1e9, bisection_bandwidth=1e8, first_wave_fraction=1.0
        )
        from repro.core.job import Job

        job = Job(0, TraceJob(make_constant_profile(), 0.0))
        # 1 GB over 100 MB/s, alone on the fabric: 10s.
        assert model.shuffle_duration(ShuffleContext(job, 0, False, 1)) == pytest.approx(10.0)

    def test_contention_slows_flows(self):
        model = NetworkShuffleModel(1e9, 1e8, first_wave_fraction=1.0)
        from repro.core.job import Job

        job = Job(0, TraceJob(make_constant_profile(), 0.0))
        alone = model.shuffle_duration(ShuffleContext(job, 0, False, 1))
        crowded = model.shuffle_duration(ShuffleContext(job, 0, False, 4))
        assert crowded == pytest.approx(4 * alone)

    def test_per_flow_cap_limits_lone_flow(self):
        model = NetworkShuffleModel(1e9, 1e10, per_flow_cap=1e8, first_wave_fraction=1.0)
        from repro.core.job import Job

        job = Job(0, TraceJob(make_constant_profile(), 0.0))
        # The fabric is huge, but the NIC caps the flow at 100 MB/s.
        assert model.shuffle_duration(ShuffleContext(job, 0, False, 1)) == pytest.approx(10.0)

    def test_callable_bytes(self):
        model = NetworkShuffleModel(
            bytes_per_reduce=lambda job, index: 1e8 * (index + 1),
            bisection_bandwidth=1e8,
            first_wave_fraction=1.0,
        )
        from repro.core.job import Job

        job = Job(0, TraceJob(make_constant_profile(), 0.0))
        assert model.shuffle_duration(ShuffleContext(job, 0, False, 1)) == pytest.approx(1.0)
        assert model.shuffle_duration(ShuffleContext(job, 2, False, 1)) == pytest.approx(3.0)

    def test_first_wave_fraction(self):
        model = NetworkShuffleModel(1e9, 1e8, first_wave_fraction=0.5)
        from repro.core.job import Job

        job = Job(0, TraceJob(make_constant_profile(), 0.0))
        full = model.shuffle_duration(ShuffleContext(job, 0, False, 1))
        first = model.shuffle_duration(ShuffleContext(job, 0, True, 1))
        assert first == pytest.approx(0.5 * full)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkShuffleModel(1e9, 0.0)
        with pytest.raises(ValueError):
            NetworkShuffleModel(1e9, 1e8, per_flow_cap=0.0)
        with pytest.raises(ValueError):
            NetworkShuffleModel(1e9, 1e8, first_wave_fraction=0.0)


class TestEngineIntegration:
    def test_network_model_drives_completion(self):
        """The recorded shuffle durations are ignored under the model."""
        profile = make_constant_profile(
            num_maps=4, num_reduces=1, map_s=10.0,
            first_shuffle_s=999.0, typical_shuffle_s=999.0, reduce_s=2.0,
        )
        # 200 MB at 100 MB/s, one flow, first wave priced in full.
        model = NetworkShuffleModel(2e8, 1e8, first_wave_fraction=1.0)
        result = run_with_model(profile, model, 4, 1)
        # maps end at 10; shuffle 2s; reduce 2s -> done at 14.
        assert result.jobs[0].completion_time == pytest.approx(14.0)

    def test_bigger_fabric_speeds_up_shuffle_heavy_job(self):
        profile = make_constant_profile(
            num_maps=4, num_reduces=8, map_s=5.0, reduce_s=1.0
        )
        slow = run_with_model(profile, NetworkShuffleModel(5e8, 5e7), 4, 4)
        fast = run_with_model(profile, NetworkShuffleModel(5e8, 5e8), 4, 4)
        assert fast.makespan < slow.makespan

    def test_contention_visible_across_waves(self):
        """With many reduces sharing the fabric, each wave's shuffle is
        slower than a lone flow would be."""
        profile = make_constant_profile(num_maps=2, num_reduces=8, map_s=5.0, reduce_s=1.0)
        model = NetworkShuffleModel(1e8, 1e8, first_wave_fraction=1.0)
        result = run_with_model(profile, model, 2, 4, min_map_percent_completed=1.0)
        reduces = result.task_records_for(0, "reduce")
        shuffle_times = [r.shuffle_end - r.start for r in reduces]
        # Four concurrent flows at 100 MB/s fabric, 100 MB each: ~4s,
        # never the 1s a lone flow would take.
        assert min(shuffle_times) > 1.5
