"""Tests for job templates (JobProfile) and trace entries (TraceJob)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import JobProfile, PhaseStats, TraceJob

from conftest import make_constant_profile


class TestJobProfileValidation:
    def test_valid_profile(self, constant_profile):
        assert constant_profile.num_maps == 8
        assert constant_profile.num_reduces == 4

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_constant_profile(num_maps=-1)

    def test_empty_job_rejected(self):
        with pytest.raises(ValueError, match="no tasks"):
            JobProfile(
                name="empty",
                num_maps=0,
                num_reduces=0,
                map_durations=np.empty(0),
                first_shuffle_durations=np.empty(0),
                typical_shuffle_durations=np.empty(0),
                reduce_durations=np.empty(0),
            )

    def test_maps_without_durations_rejected(self):
        with pytest.raises(ValueError, match="no map durations"):
            JobProfile(
                name="bad",
                num_maps=3,
                num_reduces=0,
                map_durations=np.empty(0),
                first_shuffle_durations=np.empty(0),
                typical_shuffle_durations=np.empty(0),
                reduce_durations=np.empty(0),
            )

    def test_reduces_without_durations_rejected(self):
        with pytest.raises(ValueError, match="no reduce durations"):
            JobProfile(
                name="bad",
                num_maps=1,
                num_reduces=2,
                map_durations=np.ones(1),
                first_shuffle_durations=np.ones(2),
                typical_shuffle_durations=np.ones(2),
                reduce_durations=np.empty(0),
            )

    def test_reduces_without_any_shuffle_rejected(self):
        with pytest.raises(ValueError, match="no shuffle durations"):
            JobProfile(
                name="bad",
                num_maps=1,
                num_reduces=2,
                map_durations=np.ones(1),
                first_shuffle_durations=np.empty(0),
                typical_shuffle_durations=np.empty(0),
                reduce_durations=np.ones(2),
            )

    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_constant_profile(map_s=-1.0)

    def test_nan_durations_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            JobProfile(
                name="bad",
                num_maps=1,
                num_reduces=0,
                map_durations=np.array([float("nan")]),
                first_shuffle_durations=np.empty(0),
                typical_shuffle_durations=np.empty(0),
                reduce_durations=np.empty(0),
            )

    def test_2d_durations_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            JobProfile(
                name="bad",
                num_maps=2,
                num_reduces=0,
                map_durations=np.ones((2, 2)),
                first_shuffle_durations=np.empty(0),
                typical_shuffle_durations=np.empty(0),
                reduce_durations=np.empty(0),
            )

    def test_duration_arrays_immutable(self, constant_profile):
        with pytest.raises(ValueError):
            constant_profile.map_durations[0] = 99.0


class TestDurationLookup:
    def test_cyclic_map_lookup(self):
        profile = JobProfile(
            name="cyc",
            num_maps=5,
            num_reduces=0,
            map_durations=np.array([1.0, 2.0]),
            first_shuffle_durations=np.empty(0),
            typical_shuffle_durations=np.empty(0),
            reduce_durations=np.empty(0),
        )
        assert [profile.map_duration(i) for i in range(5)] == [1.0, 2.0, 1.0, 2.0, 1.0]

    def test_first_shuffle_falls_back_to_typical(self):
        profile = JobProfile(
            name="fb",
            num_maps=1,
            num_reduces=2,
            map_durations=np.ones(1),
            first_shuffle_durations=np.empty(0),
            typical_shuffle_durations=np.array([7.0]),
            reduce_durations=np.ones(2),
        )
        assert profile.first_shuffle_duration(0) == 7.0

    def test_typical_shuffle_falls_back_to_first(self):
        profile = JobProfile(
            name="fb",
            num_maps=1,
            num_reduces=2,
            map_durations=np.ones(1),
            first_shuffle_durations=np.array([5.0]),
            typical_shuffle_durations=np.empty(0),
            reduce_durations=np.ones(2),
        )
        assert profile.typical_shuffle_duration(1) == 5.0


class TestPhaseStats:
    def test_of_empty(self):
        stats = PhaseStats.of(np.empty(0))
        assert stats.avg == 0.0 and stats.max == 0.0 and stats.count == 0

    def test_of_values(self):
        stats = PhaseStats.of(np.array([1.0, 2.0, 3.0]))
        assert stats.avg == pytest.approx(2.0)
        assert stats.max == 3.0
        assert stats.count == 3

    @given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=50))
    def test_property_avg_le_max(self, values):
        stats = PhaseStats.of(np.asarray(values))
        assert stats.avg <= stats.max + 1e-9

    def test_profile_stats(self, constant_profile):
        assert constant_profile.map_stats.avg == 10.0
        assert constant_profile.first_shuffle_stats.avg == 5.0
        assert constant_profile.typical_shuffle_stats.avg == 4.0
        assert constant_profile.reduce_stats.max == 3.0

    def test_total_task_seconds(self, constant_profile):
        # 8 maps x 10 + 4 reduces x (4 typical shuffle + 3 reduce)
        assert constant_profile.total_task_seconds() == pytest.approx(8 * 10 + 4 * 7)

    def test_with_name(self, constant_profile):
        renamed = constant_profile.with_name("other")
        assert renamed.name == "other"
        assert renamed.num_maps == constant_profile.num_maps
        assert np.array_equal(renamed.map_durations, constant_profile.map_durations)


class TestTraceJob:
    def test_valid(self, constant_profile):
        tj = TraceJob(constant_profile, 5.0, deadline=100.0)
        assert tj.submit_time == 5.0
        assert tj.deadline == 100.0

    def test_no_deadline(self, constant_profile):
        assert TraceJob(constant_profile, 0.0).deadline is None

    def test_negative_submit_rejected(self, constant_profile):
        with pytest.raises(ValueError, match="submit_time"):
            TraceJob(constant_profile, -1.0)

    def test_deadline_before_submit_rejected(self, constant_profile):
        with pytest.raises(ValueError, match="precedes"):
            TraceJob(constant_profile, 10.0, deadline=5.0)

    def test_infinite_submit_rejected(self, constant_profile):
        with pytest.raises(ValueError, match="finite"):
            TraceJob(constant_profile, float("inf"))
