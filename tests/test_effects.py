"""Effect inference, certification, and the analysis cache.

Three layers of the tentpole under test:

* ``repro.analysis.effects`` — the per-function effect lattice: local
  source detection, transitive (SCC-fixpoint) propagation, and the
  witness chains that make a verdict actionable;
* ``repro.analysis.certify`` — the signed safety verdicts: every
  registry scheduler certifies service-safe, the deliberately
  divergent fixture is rejected *with* its witness chain, and the
  signature detects tampering;
* ``repro.analysis.cache`` — the content-addressed incremental store:
  warm runs replay identical findings, any input drift (source,
  config, engine) misses, and a corrupt store degrades to empty.
"""

from __future__ import annotations

import ast
import importlib.util
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import AnalysisCache, lint_paths
from repro.analysis.cache import (
    default_cache_path,
    engine_version,
    program_key,
    source_digest,
)
from repro.analysis.callgraph import CallGraph, module_name_for_path
from repro.analysis.certify import (
    CertificationError,
    certificate_for_class,
    certify_inline,
    certify_target,
    certified_inline_class,
    failure_message,
    resolve_target,
    sign_certificate,
    verify_certificate,
)
from repro.analysis.config import LintConfig
from repro.analysis.effects import (
    IO,
    MUTATES_GLOBAL,
    MUTATES_SELF,
    NONDET,
    RAISES,
    READS_SIM_STATE,
    effect_witness,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DIVERGING = REPO_ROOT / "tests" / "fixtures" / "diverging_scheduler.py"

#: A display path that classifies as simulation code (sim_paths match).
_MOD_PATH = "src/repro/schedulers/effmod.py"
_MOD_NAME = module_name_for_path(_MOD_PATH)


def analyze(source: str, path: str = _MOD_PATH) -> CallGraph:
    """One-module graph, finalized (effects inferred)."""
    source = textwrap.dedent(source)
    graph = CallGraph(LintConfig())
    graph.add_module(path, ast.parse(source, filename=path), source)
    graph.finalize()
    return graph


def atoms(graph: CallGraph, qname: str, module: str = _MOD_NAME) -> set[str]:
    mod = graph.module_index(module)
    assert mod is not None, f"module {module!r} not indexed"
    fn = mod.functions[qname]
    assert fn.effects is not None, f"{qname} has no effect summary"
    return set(fn.effects.atoms)


# --------------------------------------------------------------------- #
# local effect sources
# --------------------------------------------------------------------- #


class TestLocalSources:
    def test_pure_function_has_empty_summary(self):
        graph = analyze("def f(x):\n    return x + 1\n")
        assert atoms(graph, "f") == set()
        fn = graph.module_index(_MOD_NAME).functions["f"]
        assert fn.effects.pure

    def test_self_attribute_read_is_reads_sim_state(self):
        graph = analyze(
            """
            class S:
                def peek(self):
                    return self.queue
            """
        )
        assert READS_SIM_STATE in atoms(graph, "S.peek")

    def test_parameter_attribute_read_is_reads_sim_state(self):
        graph = analyze("def f(job):\n    return job.deadline\n")
        assert READS_SIM_STATE in atoms(graph, "f")

    def test_self_write_and_mutator_call_are_mutates_self(self):
        graph = analyze(
            """
            class S:
                def note(self, job):
                    self.count = 1
                def push(self, job):
                    self.items.append(job)
            """
        )
        assert MUTATES_SELF in atoms(graph, "S.note")
        assert MUTATES_SELF in atoms(graph, "S.push")
        assert MUTATES_GLOBAL not in atoms(graph, "S.push")

    def test_global_statement_is_mutates_global(self):
        graph = analyze(
            """
            _count = 0
            def bump():
                global _count
                _count += 1
            """
        )
        assert MUTATES_GLOBAL in atoms(graph, "bump")

    def test_module_state_mutator_call_is_mutates_global(self):
        graph = analyze(
            """
            STATE = {}
            def record(job):
                STATE.update({job: 1})
            """
        )
        assert MUTATES_GLOBAL in atoms(graph, "record")

    def test_module_iterator_draw_is_global_and_nondet(self):
        graph = analyze(
            """
            import itertools
            _ids = itertools.count()
            def fresh():
                return next(_ids)
            """
        )
        assert {MUTATES_GLOBAL, NONDET} <= atoms(graph, "fresh")

    def test_local_shadow_of_module_state_is_clean(self):
        graph = analyze(
            """
            STATE = {}
            def f():
                STATE = {}
                STATE.update({1: 2})
                return STATE
            """
        )
        assert MUTATES_GLOBAL not in atoms(graph, "f")

    def test_io_builtins_and_os_calls(self):
        graph = analyze(
            """
            import os
            import os.path
            def shout(msg):
                print(msg)
            def wipe(path):
                os.remove(path)
            def join(a, b):
                return os.path.join(a, b)
            """
        )
        assert IO in atoms(graph, "shout")
        assert IO in atoms(graph, "wipe")
        assert IO not in atoms(graph, "join")

    def test_bare_name_call_to_imported_io_function_is_io(self):
        # ``from subprocess import run; run(...)`` must not slip past
        # the scanner just because the call is not dotted.
        graph = analyze(
            """
            from subprocess import run
            from shutil import rmtree
            def launch(cmd):
                run(cmd)
            def wipe(path):
                rmtree(path)
            """
        )
        assert IO in atoms(graph, "launch")
        assert IO in atoms(graph, "wipe")

    def test_wallclock_read_is_nondet(self):
        graph = analyze(
            """
            import time
            def now():
                return time.time()
            """
        )
        assert NONDET in atoms(graph, "now")

    def test_escaping_raise_is_raises(self):
        graph = analyze(
            "def f():\n    raise ValueError('no')\n"
        )
        assert RAISES in atoms(graph, "f")


# --------------------------------------------------------------------- #
# interprocedural propagation (the SCC fixpoint)
# --------------------------------------------------------------------- #


class TestPropagation:
    def test_caller_inherits_callee_atoms(self):
        graph = analyze(
            """
            import time
            def leaf():
                return time.time()
            def mid():
                return leaf()
            def top():
                return mid()
            """
        )
        for qname in ("leaf", "mid", "top"):
            assert NONDET in atoms(graph, qname)

    def test_mutual_recursion_shares_one_summary(self):
        graph = analyze(
            """
            def ping(n):
                print(n)
                return pong(n - 1)
            def pong(n):
                return ping(n) if n else 0
            """
        )
        assert atoms(graph, "ping") == atoms(graph, "pong")
        assert IO in atoms(graph, "pong")

    def test_self_recursion_terminates(self):
        graph = analyze(
            "def f(n):\n    return f(n - 1) if n else 0\n"
        )
        assert RAISES not in atoms(graph, "f")

    def test_witness_chain_reaches_the_sink(self):
        graph = analyze(
            """
            import time
            def leaf():
                return time.time()
            def mid():
                return leaf()
            def top():
                return mid()
            """
        )
        fn = graph.module_index(_MOD_NAME).functions["top"]
        found = effect_witness(fn, NONDET)
        assert found is not None
        chain, sink = found
        assert [c.rpartition(".")[2] for c in chain] == ["top", "mid", "leaf"]
        assert "time.time" in sink.detail

    def test_witness_absent_for_missing_atom(self):
        graph = analyze("def f():\n    return 1\n")
        fn = graph.module_index(_MOD_NAME).functions["f"]
        assert effect_witness(fn, IO) is None

    def test_witness_survives_chains_deeper_than_64(self):
        # A BFS-shortest chain longer than the old 64-step guard used
        # to fall off the walk and hit an assert; it must now resolve.
        deep = "import time\ndef f0():\n    return time.time()\n" + "".join(
            f"def f{i}():\n    return f{i - 1}()\n" for i in range(1, 101)
        )
        graph = analyze(deep)
        fn = graph.module_index(_MOD_NAME).functions["f100"]
        found = effect_witness(fn, NONDET)
        assert found is not None
        chain, sink = found
        assert len(chain) == 101
        assert "time.time" in sink.detail
        assert graph.witness(fn, "wallclock") is not None

    def test_witness_degrades_to_none_on_cyclic_steps(self):
        # A corrupted steps table (call step pointing back at itself)
        # must exhaust the guard and return None, never raise.
        from repro.analysis.callgraph import FuncNode
        from repro.analysis.effects import EffectSummary

        fn = FuncNode(module="m", path="m.py", qname="f", lineno=1)
        fn.effects = EffectSummary(
            atoms=frozenset({IO}), steps={IO: ("call", fn)}
        )
        assert effect_witness(fn, IO) is None


# --------------------------------------------------------------------- #
# certification
# --------------------------------------------------------------------- #


def _registry_items():
    from repro.schedulers import _REGISTRY

    return sorted(_REGISTRY.items())


@pytest.fixture(scope="module")
def package_graph():
    """One call graph over the installed package plus the fixture."""
    from repro.analysis.runner import iter_python_files

    import repro

    graph = CallGraph(LintConfig())
    files = list(iter_python_files([Path(repro.__file__).parent]))
    files.append(DIVERGING)
    for file_path in files:
        display = file_path.resolve().relative_to(REPO_ROOT).as_posix()
        source = file_path.read_text(encoding="utf-8")
        graph.add_module(display, ast.parse(source, filename=display), source)
    graph.finalize()
    return graph


class TestCertification:
    def test_every_registry_scheduler_is_service_safe(self, package_graph):
        names = _registry_items()
        assert names, "scheduler registry is empty"
        for name, cls in names:
            spec = importlib.util.find_spec(cls.__module__)
            assert spec is not None and spec.origin is not None
            display = Path(spec.origin).resolve().relative_to(REPO_ROOT).as_posix()
            doc = certificate_for_class(
                package_graph,
                module_name_for_path(display),
                cls.__name__,
                target=name,
                src_digest=source_digest(Path(spec.origin).read_text()),
            )
            assert doc["certified"], (
                f"{name} failed certification: {failure_message(doc)}"
            )
            assert doc["cache_safe"] and doc["parallel_safe"] and doc["service_safe"]
            assert doc["witness"] is None
            assert verify_certificate(doc)
            # choose_next_* exists in the closure and stays read-only.
            assert "choose_next_map_task" in doc["effects"]

    def test_diverging_fixture_is_rejected_with_witness(self, package_graph):
        display = DIVERGING.relative_to(REPO_ROOT).as_posix()
        doc = certificate_for_class(
            package_graph,
            module_name_for_path(display),
            "DivergingScheduler",
            target="diverging",
            src_digest=source_digest(DIVERGING.read_text()),
        )
        assert not doc["certified"]
        assert not doc["cache_safe"]
        assert not doc["parallel_safe"]
        assert not doc["service_safe"]
        witness = doc["witness"]
        assert witness is not None
        assert witness["atom"] == NONDET
        assert witness["method"] == "__init__"
        assert "_instances" in witness["detail"]
        assert any("__init__" in hop for hop in witness["chain"])
        assert "_instances" in failure_message(doc)
        assert verify_certificate(doc)

    def test_certify_target_end_to_end(self, tmp_path):
        cache = AnalysisCache.load(tmp_path / "cache.json")
        doc = certify_target("fifo", cache=cache, root=REPO_ROOT)
        assert doc["certified"] and doc["class"] == "FIFOScheduler"
        assert verify_certificate(doc)
        # Warm path: same program key -> the stored document verbatim.
        warm_cache = AnalysisCache.load(tmp_path / "cache.json")
        warm = certify_target("fifo", cache=warm_cache, root=REPO_ROOT)
        assert warm == doc

    def test_unknown_target_raises(self):
        with pytest.raises(CertificationError, match="unknown certify target"):
            resolve_target("no-such-scheduler")
        with pytest.raises(CertificationError, match="bad class name"):
            resolve_target("mod.py:not an identifier")
        with pytest.raises(CertificationError, match="no such module file"):
            resolve_target("missing/dir/mod.py:Cls")


class TestSignature:
    def test_roundtrip_and_tamper_detection(self, package_graph):
        display = DIVERGING.relative_to(REPO_ROOT).as_posix()
        doc = certificate_for_class(
            package_graph,
            module_name_for_path(display),
            "DivergingScheduler",
            target="diverging",
            src_digest="0" * 32,
        )
        assert verify_certificate(doc)
        tampered = dict(doc)
        tampered["certified"] = True
        tampered["service_safe"] = True
        assert not verify_certificate(tampered)
        unsigned = {k: v for k, v in doc.items() if k != "signature"}
        assert not verify_certificate(unsigned)
        resigned = dict(tampered)
        resigned["signature"] = sign_certificate(resigned)
        assert verify_certificate(resigned)

    def test_signature_is_deterministic(self):
        doc = {"a": 1, "b": [2, 3]}
        assert sign_certificate(doc) == sign_certificate(dict(doc))


_INLINE_OK = """\
from repro.schedulers.base import Scheduler


class TinyFifo(Scheduler):
    name = "TinyFifo"

    def _key(self, job):
        return (job.submit_time, job.job_id)

    def choose_next_map_task(self, job_queue):
        return min(job_queue, key=self._key, default=None)

    def choose_next_reduce_task(self, job_queue):
        return min(job_queue, key=self._key, default=None)
"""

_INLINE_BAD = """\
import time


class WallclockScheduler:
    name = "Wallclock"

    def choose_next_map_task(self, job_queue):
        time.time()
        return job_queue[0] if job_queue else None

    def choose_next_reduce_task(self, job_queue):
        return job_queue[0] if job_queue else None
"""


class TestInlineCertification:
    def test_clean_inline_source_certifies_and_materializes(self):
        doc = certify_inline(_INLINE_OK, "TinyFifo")
        assert doc["certified"]
        assert doc["target"] == "inline:TinyFifo"
        assert verify_certificate(doc)
        cls = certified_inline_class(_INLINE_OK, "TinyFifo")
        assert cls.__name__ == "TinyFifo"
        # Fresh namespace per materialization: distinct class objects.
        assert certified_inline_class(_INLINE_OK, "TinyFifo") is not cls

    def test_effectful_inline_source_is_refused(self):
        doc = certify_inline(_INLINE_BAD, "WallclockScheduler")
        assert not doc["service_safe"]
        assert doc["witness"]["atom"] == NONDET
        with pytest.raises(CertificationError, match="not service-safe"):
            certified_inline_class(_INLINE_BAD, "WallclockScheduler")

    def test_inline_verdict_is_memoized(self):
        assert certify_inline(_INLINE_OK, "TinyFifo") is certify_inline(
            _INLINE_OK, "TinyFifo"
        )

    def test_syntax_error_is_a_certification_error(self):
        with pytest.raises(CertificationError, match="cannot parse"):
            certify_inline("def broken(:\n", "X")

    def test_missing_class_is_a_certification_error(self):
        with pytest.raises(CertificationError, match="not found"):
            certify_inline("def lonely():\n    return 1\n", "Ghost")


class TestStrictInlineCertification:
    """The fail-closed rules that make the inline verdict exec-safe.

    Inline certification gates ``exec`` of untrusted network input, so
    (unlike lint) anything the analyzer cannot resolve to a known-pure
    target must fail, and the module's import-time code — which runs
    before any predicate applies — must be effect-free.
    """

    def _rejected(self, source: str, cls: str = "C") -> str:
        doc = certify_inline(textwrap.dedent(source), cls)
        assert not doc["service_safe"]
        assert doc["witness"] is not None
        return doc["witness"]["atom"]

    def test_top_level_effectful_statement_is_refused(self):
        with pytest.raises(CertificationError, match="effectful code at import"):
            certify_inline(
                'import math\nprint("boo")\n\n'
                "class C:\n    def choose_next_map_task(self, q):\n"
                "        return None\n",
                "C",
            )

    def test_non_whitelisted_import_is_refused(self):
        for stmt in ("import os", "from subprocess import run",
                     "import socket"):
            with pytest.raises(CertificationError, match="whitelist"):
                certify_inline(
                    f"{stmt}\n\nclass C:\n"
                    "    def choose_next_map_task(self, q):\n"
                    "        return None\n",
                    "C",
                )

    def test_function_local_import_is_refused(self):
        # Imports hidden inside method bodies execute too.
        with pytest.raises(CertificationError, match="whitelist"):
            certify_inline(
                "class C:\n    def choose_next_map_task(self, q):\n"
                "        import os\n        return None\n",
                "C",
            )

    def test_relative_import_is_refused(self):
        with pytest.raises(CertificationError, match="relative"):
            certify_inline(
                "from . import helpers\n\nclass C:\n"
                "    def choose_next_map_task(self, q):\n"
                "        return None\n",
                "C",
            )

    def test_dunder_import_laundering_is_unresolved(self):
        atom = self._rejected(
            """
            class C:
                def choose_next_map_task(self, q):
                    __import__('os').system('id')
                    return None
            """
        )
        assert atom == "unresolved-call"

    def test_dynamic_builtins_are_unresolved(self):
        for snippet in ("eval('1')", "f = getattr", "exec('pass')"):
            atom = self._rejected(
                f"""
                class C:
                    def choose_next_map_task(self, q):
                        {snippet}
                        return None
                """
            )
            assert atom == "unresolved-call"

    def test_dunder_introspection_is_unresolved(self):
        atom = self._rejected(
            """
            class C:
                def choose_next_map_task(self, q):
                    leak = ().__class__.__bases__[0].__subclasses__()
                    return None
            """
        )
        assert atom == "unresolved-call"

    def test_call_outside_pure_module_whitelist_is_unresolved(self):
        atom = self._rejected(
            """
            import time

            class C:
                def choose_next_map_task(self, q):
                    time.sleep(1)
                    return None
            """
        )
        assert atom == "unresolved-call"

    def test_effectful_decorator_application_is_refused(self):
        with pytest.raises(CertificationError, match="effectful code at import"):
            certify_inline(
                "@print\ndef noisy():\n    return 1\n\n"
                "class C:\n    def choose_next_map_task(self, q):\n"
                "        return None\n",
                "C",
            )

    def test_import_time_call_into_effectful_blob_function_is_refused(self):
        with pytest.raises(CertificationError, match="reaches io"):
            certify_inline(
                "def boot():\n    print('x')\nboot()\n\n"
                "class C:\n    def choose_next_map_task(self, q):\n"
                "        return None\n",
                "C",
            )

    def test_effectful_signature_annotation_is_refused(self):
        # Annotations evaluate at def time (no __future__ import in
        # the exec'd namespace unless the source supplies one).
        with pytest.raises(CertificationError, match="effectful code at import"):
            certify_inline(
                "class C:\n"
                "    def choose_next_map_task(self, q: print('x')):\n"
                "        return None\n",
                "C",
            )

    def test_future_annotations_import_is_allowed(self):
        doc = certify_inline(
            "from __future__ import annotations\n\nclass C:\n"
            "    def choose_next_map_task(self, q) -> 'Job':\n"
            "        return None\n",
            "C",
        )
        assert doc["service_safe"]

    def test_oversized_source_is_refused(self):
        from repro.analysis.certify import MAX_INLINE_SOURCE

        bloated = "x = 1\n" * (MAX_INLINE_SOURCE // 6 + 1)
        with pytest.raises(CertificationError, match="certification limit"):
            certify_inline(bloated, "C")

    def test_rich_but_clean_scheduler_still_certifies(self):
        source = textwrap.dedent(
            """
            import heapq
            from dataclasses import dataclass, field
            from repro.schedulers.base import Scheduler


            @dataclass
            class _Entry:
                key: tuple = field(default=())


            class HeapFifo(Scheduler):
                name = "HeapFifo"

                def __init__(self):
                    super().__init__()
                    self._heap = []

                def _key(self, job):
                    return (job.submit_time, job.job_id)

                def choose_next_map_task(self, job_queue):
                    ordered = sorted(job_queue, key=lambda j: self._key(j))
                    return ordered[0] if ordered else None

                def choose_next_reduce_task(self, job_queue):
                    return min(job_queue, key=self._key, default=None)
            """
        )
        doc = certify_inline(source, "HeapFifo")
        assert doc["service_safe"], failure_message(doc)
        assert "unresolved-call" not in doc["summary"]


# --------------------------------------------------------------------- #
# the incremental analysis cache
# --------------------------------------------------------------------- #

#: A sim-path module with one deliberate DET violation.
_DIRTY = """\
import time


def stamp():
    return time.time()
"""

_CLEAN = """\
def stamp():
    return 1234.5
"""


def _make_tree(root: Path) -> Path:
    tree = root / "schedulers"
    tree.mkdir()
    (tree / "dirty.py").write_text(_DIRTY)
    (tree / "clean.py").write_text(_CLEAN.replace("stamp", "other"))
    return tree


class TestAnalysisCache:
    def test_warm_findings_identical_and_no_reanalysis_needed(self, tmp_path):
        tree = _make_tree(tmp_path)
        cache_path = tmp_path / ".analysis_cache.json"
        cold = lint_paths(
            [tree], root=tmp_path, cache=AnalysisCache.load(cache_path)
        )
        assert any(f.rule_id.startswith("DET") for f in cold)
        assert cache_path.is_file()
        warm = lint_paths(
            [tree], root=tmp_path, cache=AnalysisCache.load(cache_path)
        )
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]

    def test_source_change_invalidates(self, tmp_path):
        tree = _make_tree(tmp_path)
        cache_path = tmp_path / ".analysis_cache.json"
        cold = lint_paths(
            [tree], root=tmp_path, cache=AnalysisCache.load(cache_path)
        )
        (tree / "dirty.py").write_text(_CLEAN)
        after = lint_paths(
            [tree], root=tmp_path, cache=AnalysisCache.load(cache_path)
        )
        dirty_rules = {f.rule_id for f in cold} - {f.rule_id for f in after}
        assert dirty_rules, "fixing the violation must change the findings"

    def test_config_change_misses(self, tmp_path):
        mods = [("schedulers/a.py", source_digest("x = 1\n"))]
        base = program_key(LintConfig(), mods)
        assert program_key(LintConfig(disable=frozenset({"DET001"})), mods) != base
        assert program_key(
            LintConfig(), [("schedulers/a.py", source_digest("x = 2\n"))]
        ) != base
        # Order independence: the key names content, not iteration order.
        two = [("a.py", "d1"), ("b.py", "d2")]
        assert program_key(LintConfig(), two) == program_key(
            LintConfig(), list(reversed(two))
        )

    def test_corrupt_store_degrades_to_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json")
        cache = AnalysisCache.load(path)
        assert cache.lookup_findings("anything") is None
        path.write_text(json.dumps({"version": 99}))
        assert AnalysisCache.load(path).lookup_findings("k") is None

    def test_stale_engine_version_discards_store(self, tmp_path):
        path = tmp_path / "cache.json"
        data = AnalysisCache._empty()
        data["engine"] = "different"
        data["program"]["key"] = {"findings": []}
        path.write_text(json.dumps(data))
        assert AnalysisCache.load(path).lookup_findings("key") is None

    def test_certificate_store_roundtrip(self, tmp_path):
        cache = AnalysisCache.load(tmp_path / "cache.json")
        doc = {"certified": True, "signature": "s"}
        cache.store_certificate("mod:Cls", "key1", doc)
        cache.save()
        reloaded = AnalysisCache.load(tmp_path / "cache.json")
        assert reloaded.lookup_certificate("mod:Cls", "key1") == doc
        assert reloaded.lookup_certificate("mod:Cls", "key2") is None
        assert reloaded.lookup_certificate("other:Cls", "key1") is None

    def test_default_cache_path_is_baseline_sibling(self):
        assert default_cache_path(None) is None
        got = default_cache_path(Path("scripts/lint_baseline.json"))
        assert got == Path("scripts/.analysis_cache.json")

    def test_engine_version_is_stable_within_process(self):
        assert engine_version() == engine_version()

    def test_engine_version_depends_on_interpreter(self, monkeypatch):
        # A checkout shared across Python versions must not replay
        # cached findings produced by a different interpreter.
        import sys

        baseline = engine_version()
        fake = (sys.version_info[0] + 1, 0, 0, "final", 0)
        monkeypatch.setattr(sys, "version_info", fake)
        assert engine_version() != baseline
