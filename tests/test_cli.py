"""Tests for the simmr command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import TraceJob
from repro.hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from repro.trace.schema import load_trace

from conftest import make_random_profile


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.json"])
        assert args.jobs == 20
        assert args.workload == "mix"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestGenerate:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["generate", str(out), "--jobs", "5", "--seed", "1"]) == 0
        trace = load_trace(out)
        assert len(trace) == 5
        assert "wrote 5 jobs" in capsys.readouterr().out

    def test_single_app_workload(self, tmp_path):
        out = tmp_path / "t.json"
        main(["generate", str(out), "--jobs", "3", "--workload", "Sort"])
        assert all(j.profile.name == "Sort" for j in load_trace(out))

    def test_deadline_factor(self, tmp_path):
        out = tmp_path / "t.json"
        main(["generate", str(out), "--jobs", "3", "--deadline-factor", "2.0"])
        assert all(j.deadline is not None for j in load_trace(out))

    def test_facebook_workload(self, tmp_path):
        out = tmp_path / "t.json"
        main(["generate", str(out), "--jobs", "4", "--workload", "facebook"])
        assert len(load_trace(out)) == 4


class TestProfileAndReplay:
    @pytest.fixture
    def history_file(self, tmp_path, rng):
        cfg = EmulatorConfig(num_nodes=4, heartbeat_interval=1.0, seed=0)
        trace = [TraceJob(make_random_profile(rng, "app", 6, 3), 0.0)]
        result = HadoopClusterEmulator(cfg).run(trace)
        path = tmp_path / "history.log"
        path.write_text(result.history_text())
        return path

    def test_profile_subcommand(self, history_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["profile", str(history_file), str(out)]) == 0
        assert len(load_trace(out)) == 1
        assert "profiled 1 jobs" in capsys.readouterr().out

    def test_replay_subcommand(self, history_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        main(["profile", str(history_file), str(out)])
        assert main(["replay", str(out), "--scheduler", "fifo"]) == 0
        text = capsys.readouterr().out
        assert "makespan" in text
        assert "app" in text
        assert "engine=kernel" in text

    def test_replay_json_format_reports_engine_path(
        self, history_file, tmp_path, capsys
    ):
        import json

        out = tmp_path / "trace.json"
        main(["profile", str(history_file), str(out)])
        capsys.readouterr()
        assert main(["replay", str(out), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine_path"] == "kernel"
        assert doc["fallback_reason"] is None
        assert doc["jobs"] and doc["makespan_s"] > 0

    def test_replay_json_format_names_fallback(
        self, history_file, tmp_path, capsys
    ):
        import json

        out = tmp_path / "trace.json"
        main(["profile", str(history_file), str(out)])
        capsys.readouterr()
        assert main(
            ["replay", str(out), "--scheduler", "dp", "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine_path"] == "object"
        assert "without the columnar contract" in doc["fallback_reason"]

    def test_compare_subcommand(self, history_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        main(["profile", str(history_file), str(out)])
        assert main(["compare", str(out), "--schedulers", "fifo,maxedf"]) == 0
        text = capsys.readouterr().out
        assert "FIFO" in text and "MaxEDF" in text


class TestExperimentCommand:
    def test_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "2 map waves" in out

    def test_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "4 map waves" in capsys.readouterr().out


class TestTraceTools:
    @pytest.fixture
    def trace_file(self, tmp_path):
        out = tmp_path / "trace.json"
        main(["generate", str(out), "--jobs", "5", "--seed", "2",
              "--mean-interarrival", "500"])
        return out

    def test_stats(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "5 jobs" in out
        assert "offered load" in out

    def test_compact(self, trace_file, tmp_path, capsys):
        out = tmp_path / "compact.json"
        assert main(["compact", str(trace_file), str(out), "--max-gap", "10"]) == 0
        from repro.trace.schema import load_trace
        compacted = load_trace(out)
        gaps = [
            b.submit_time - a.submit_time
            for a, b in zip(compacted, compacted[1:])
        ]
        assert all(g <= 10.0 + 1e-9 for g in gaps)

    def test_scale(self, trace_file, tmp_path, capsys):
        out = tmp_path / "big.json"
        assert main(["scale", str(trace_file), str(out), "3.0"]) == 0
        from repro.trace.schema import load_trace
        original = load_trace(trace_file)
        scaled = load_trace(out)
        assert sum(j.profile.num_maps for j in scaled) > 2 * sum(
            j.profile.num_maps for j in original
        )
        assert "x3" in capsys.readouterr().out


class TestReplayOutput:
    def test_output_log_and_csv(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        main(["generate", str(trace), "--jobs", "3", "--seed", "4"])
        out_json = tmp_path / "result.json"
        out_csv = tmp_path / "jobs.csv"
        assert main([
            "replay", str(trace), "--output", str(out_json), "--csv", str(out_csv)
        ]) == 0
        from repro.core.results_io import load_result
        result = load_result(out_json)
        assert len(result.jobs) == 3
        assert len(result.task_records) > 0
        assert out_csv.read_text().startswith("job_id,")


class TestFastExperimentIds:
    def test_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        assert "KS distances" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "KL divergence" in capsys.readouterr().out

    def test_locality_with_plot(self, capsys):
        assert main(["experiment", "locality", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "node_local_pct" in out
        assert "node-local" in out  # the rendered plot legend


class TestProgressPlot:
    def test_fig1_plot(self, capsys):
        assert main(["experiment", "fig1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "o=map" in out and "x=shuffle" in out and "+=reduce" in out


class TestReplaySchedulerVariants:
    @pytest.mark.parametrize("name", ["fair", "dp", "flex"])
    def test_replay_with_each_registry_policy(self, name, tmp_path, capsys):
        trace = tmp_path / "t.json"
        main(["generate", str(trace), "--jobs", "3", "--seed", "6"])
        assert main(["replay", str(trace), "--scheduler", name]) == 0
        assert "makespan" in capsys.readouterr().out


class TestVersionFlag:
    def test_version_matches_package(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"simmr {__version__}"

    def test_version_is_the_cache_key_salt(self, monkeypatch):
        # The flag reports the same string cache_key() salts with, so a
        # CLI user can tell which cache entries a binary can reuse:
        # changing the package version must change every key.
        import repro
        from repro.parallel.cache import cache_key

        key = cache_key("t", "s", {"x": 1})
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert cache_key("t", "s", {"x": 1}) != key


class TestExitHygiene:
    def test_keyboard_interrupt_exits_130(self, monkeypatch):
        def interrupted(argv):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli._dispatch", interrupted)
        assert main(["--version"]) == 130

    def test_broken_pipe_exits_141(self, monkeypatch, tmp_path):
        # Simulate `simmr ... | head` closing the pipe mid-print: the
        # handler re-points stdout's fd at /dev/null, so run it against
        # a real fd-backed stdout instead of pytest's capture object.
        import sys as _sys

        def broken(argv):
            raise BrokenPipeError

        monkeypatch.setattr("repro.cli._dispatch", broken)
        real_stdout = open(tmp_path / "stdout.txt", "w")
        monkeypatch.setattr(_sys, "stdout", real_stdout)
        try:
            assert main(["--version"]) == 141
        finally:
            real_stdout.close()


class TestServeSubmitParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8642
        assert args.workers == 2
        assert args.queue_size == 16
        assert not args.no_cache

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "trace.json"])
        assert args.url == "http://127.0.0.1:8642"
        assert args.scheduler == "fifo"
        assert args.retries == 0

    def test_serve_cache_conflict(self, capsys):
        assert main(["serve", "--no-cache", "--cache-path", "x.sqlite"]) == 2
        assert "conflicts" in capsys.readouterr().err


class TestSubmitRoundTrip:
    @pytest.fixture
    def service_url(self, tmp_path):
        from repro.service import ServiceConfig, SimulationServer

        config = ServiceConfig(port=0, workers=1, queue_size=4,
                               cache=tmp_path / "cli-cache.sqlite")
        with SimulationServer(config).start() as server:
            yield server.url

    def test_submit_with_verify(self, service_url, tmp_path, capsys):
        trace = tmp_path / "t.json"
        main(["generate", str(trace), "--jobs", "3", "--seed", "9"])
        capsys.readouterr()
        assert main([
            "submit", str(trace), "--url", service_url, "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out
        assert "event_digest=" in out
        assert "verify: OK" in out

    def test_submit_twice_hits_cache(self, service_url, tmp_path, capsys):
        trace = tmp_path / "t.json"
        main(["generate", str(trace), "--jobs", "3", "--seed", "9"])
        main(["submit", str(trace), "--url", service_url])
        capsys.readouterr()
        assert main(["submit", str(trace), "--url", service_url]) == 0
        assert "(cache" in capsys.readouterr().out

    def test_submit_unreachable_service(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        main(["generate", str(trace), "--jobs", "2", "--seed", "1"])
        assert main([
            "submit", str(trace), "--url", "http://127.0.0.1:9",  # discard port
        ]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestTracePackUnpack:
    @pytest.fixture
    def json_trace(self, tmp_path):
        path = tmp_path / "t.json"
        main(["generate", str(path), "--jobs", "4", "--seed", "11"])
        return path

    def test_pack_then_unpack_preserves_digest(self, json_trace, tmp_path, capsys):
        packed = tmp_path / "t.simmr"
        unpacked = tmp_path / "t2.json"
        capsys.readouterr()
        assert main(["trace", "pack", str(json_trace), str(packed)]) == 0
        pack_out = capsys.readouterr().out
        assert "packed 4 jobs" in pack_out
        assert main(["trace", "unpack", str(packed), str(unpacked)]) == 0
        unpack_out = capsys.readouterr().out
        digest = pack_out.split("digest ")[1].strip()
        assert digest in unpack_out  # same digest survives the round trip

        from repro.sanitize.digest import trace_digest

        assert trace_digest(load_trace(unpacked)) == digest

    def test_pack_is_smaller_than_json(self, json_trace, tmp_path):
        packed = tmp_path / "t.simmr"
        main(["trace", "pack", str(json_trace), str(packed)])
        assert packed.stat().st_size < json_trace.stat().st_size

    def test_pack_refuses_double_pack(self, json_trace, tmp_path, capsys):
        packed = tmp_path / "t.simmr"
        main(["trace", "pack", str(json_trace), str(packed)])
        capsys.readouterr()
        assert main(["trace", "pack", str(packed), str(tmp_path / "x")]) == 2
        assert "already packed" in capsys.readouterr().err

    def test_unpack_refuses_json_input(self, json_trace, tmp_path, capsys):
        assert main(["trace", "unpack", str(json_trace), str(tmp_path / "x")]) == 2
        assert "not a binary trace" in capsys.readouterr().err

    def test_replay_accepts_packed_trace(self, json_trace, tmp_path, capsys):
        packed = tmp_path / "t.simmr"
        main(["trace", "pack", str(json_trace), str(packed)])
        capsys.readouterr()
        assert main(["replay", str(json_trace)]) == 0
        json_line = capsys.readouterr().out.splitlines()[0]
        assert main(["replay", str(packed)]) == 0
        packed_line = capsys.readouterr().out.splitlines()[0]
        # Same makespan and event count; drop the wall-clock events/s tail.
        assert packed_line.split(" (")[0] == json_line.split(" (")[0]


class TestCacheMaintenance:
    @pytest.fixture
    def warm_cache(self, tmp_path):
        """A cache populated by one small sweep."""
        trace = tmp_path / "t.json"
        main(["generate", str(trace), "--jobs", "3", "--seed", "5"])
        assert main([
            "sweep", str(trace), "--schedulers", "fifo",
            "--map-slots", "32,64", "--quiet",
        ]) == 0
        return trace

    def test_stats_reports_entries(self, warm_cache, capsys):
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:      2" in out
        assert "1 trace(s)" in out

    def test_prune_honours_age(self, warm_cache, capsys):
        capsys.readouterr()
        assert main(["cache", "prune", "--older-than", "1d"]) == 0
        assert "pruned 0" in capsys.readouterr().out
        assert main(["cache", "prune", "--older-than", "0s"]) == 0
        assert "pruned 2" in capsys.readouterr().out

    def test_clear_empties_store(self, warm_cache, capsys):
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "cleared 2" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries:      0" in capsys.readouterr().out

    def test_bad_duration_rejected(self, warm_cache, capsys):
        assert main(["cache", "prune", "--older-than", "tomorrow"]) == 2
        assert "bad duration" in capsys.readouterr().err

    def test_prune_missing_file_rejected(self, tmp_path, capsys):
        assert main([
            "cache", "--cache-path", str(tmp_path / "nope.sqlite"),
            "prune", "--older-than", "1d",
        ]) == 2
        assert "no cache file" in capsys.readouterr().err


class TestCertifyCommand:
    DIVERGING = "tests/fixtures/diverging_scheduler.py:DivergingScheduler"

    def test_registry_scheduler_certifies(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        assert main(["certify", "fifo", "--analysis-cache", str(cache)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["certified"] is True
        assert doc["class"] == "FIFOScheduler"
        assert doc["cache_safe"] and doc["parallel_safe"] and doc["service_safe"]
        assert isinstance(doc["signature"], str) and len(doc["signature"]) == 64
        # Second invocation is served from the analysis cache, verbatim.
        assert main(["certify", "fifo", "--analysis-cache", str(cache)]) == 0
        assert json.loads(capsys.readouterr().out) == doc

    def test_diverging_fixture_rejected_with_witness(self, capsys):
        assert main(["certify", self.DIVERGING, "--format", "text"]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "witness:" in out
        assert "_instances" in out
        assert "nondeterministic-source" in out

    def test_unknown_target_is_usage_error(self, capsys):
        assert main(["certify", "no-such-policy"]) == 2
        assert "unknown certify target" in capsys.readouterr().err


class TestLintSarif:
    FIXTURE = "tests/fixtures/bad_scheduler.py"

    def test_sarif_document_shape(self, capsys):
        assert main(["lint", self.FIXTURE, "--format", "sarif", "--no-cache"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "simlint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        results = run["results"]
        assert results, "the broken fixture must produce SARIF results"
        for result in results:
            assert result["ruleId"] in rule_ids
            assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == self.FIXTURE
            assert location["region"]["startLine"] > 0

    def test_clean_file_yields_empty_results(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x + 1\n")
        assert main(["lint", str(clean), "--format", "sarif", "--no-cache"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestCheckJsonMerged:
    def test_single_document_with_top_level_ok(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x + 1\n")
        assert main([
            "check", str(clean), "--format", "json",
            "--schedulers", "fifo", "--jobs", "3",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        # ONE merged document: a top-level verdict plus one tagged
        # findings list spanning both halves (previously consumers had
        # to stitch doc["static"] and doc["dynamic"] themselves).
        assert doc["ok"] is True
        assert doc["findings"] == []
        assert set(doc) >= {"ok", "findings", "static", "dynamic"}
        assert [r["scheduler"] for r in doc["dynamic"]] == ["fifo"]

    def test_lint_findings_are_tagged_with_source(self, capsys):
        assert main([
            "check", "tests/fixtures/bad_scheduler.py",
            "--format", "json", "--static-only",
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["findings"]
        assert {entry["source"] for entry in doc["findings"]} == {"lint"}
        assert all(entry["rule_id"] for entry in doc["findings"])
