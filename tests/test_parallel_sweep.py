"""Tests for repro.parallel: the executor and the result cache.

The properties under test are the tentpole guarantees:

* serial, parallel and cache-restored executions of the same task are
  event-digest-identical;
* the cache key covers everything that determines a result, so a warm
  cache re-run is pure lookups and a changed input is a miss;
* an interrupted campaign resumes from its completed cells.
"""

from __future__ import annotations

import json

import pytest

from repro.core import ClusterConfig, TraceJob
from repro.core.engine import SimulatorEngine
from repro.parallel import (
    ResultCache,
    SchedulerSpec,
    SimTask,
    cache_key,
    default_cache_path,
    register_spec_kind,
    simulate_many,
)
from repro.parallel.executor import _derive_seed
from repro.sanitize import Sanitizer
from repro.sanitize.digest import DigestRecorder, EventDigest, trace_digest
from repro.schedulers import FIFOScheduler, make_scheduler

from conftest import make_constant_profile, make_random_profile


@pytest.fixture
def trace(rng):
    profile = make_random_profile(rng, num_maps=24, num_reduces=8)
    return [
        TraceJob(profile, 0.0, deadline=400.0),
        TraceJob(profile, 10.0),
        TraceJob(profile, 30.0, deadline=900.0),
    ]


def grid_tasks(n_schedulers=2, n_clusters=2):
    names = ["fifo", "maxedf", "minedf"][:n_schedulers]
    clusters = [ClusterConfig(16, 16), ClusterConfig(64, 64)][:n_clusters]
    return [
        SimTask(trace_id="t", scheduler=SchedulerSpec(name=name), cluster=cluster)
        for name in names
        for cluster in clusters
    ]


# --------------------------------------------------------------------------- #
# the cache
# --------------------------------------------------------------------------- #

class TestResultCache:
    def run_one(self, trace):
        engine = SimulatorEngine(ClusterConfig(16, 16), FIFOScheduler())
        return engine.run(trace)

    def test_put_get_roundtrip(self, trace):
        result = self.run_one(trace)
        with ResultCache(":memory:") as cache:
            cache.put("k1", result, trace_digest="td", scheduler_id="sid")
            restored = cache.get("k1")
        assert restored is not None
        assert restored.makespan == result.makespan
        assert restored.completion_times() == result.completion_times()
        assert restored.events_processed == result.events_processed

    def test_miss_and_stats(self, trace):
        with ResultCache(":memory:") as cache:
            assert cache.get("absent") is None
            cache.put("k", self.run_one(trace))
            assert cache.get("k") is not None
            assert cache.stats.hits == 1
            assert cache.stats.misses == 1
            assert cache.stats.stores == 1
            assert cache.stats.hit_rate == 0.5

    def test_contains_delete_clear_len(self, trace):
        result = self.run_one(trace)
        with ResultCache(":memory:") as cache:
            cache.put("a", result)
            cache.put("b", result)
            assert cache.contains("a")
            assert len(cache) == 2
            assert list(cache.keys()) == ["a", "b"]
            cache.delete("a")
            assert not cache.contains("a")
            assert cache.clear() == 1
            assert len(cache) == 0

    def test_corrupt_row_is_a_miss(self, trace):
        with ResultCache(":memory:") as cache:
            cache.put("k", self.run_one(trace))
            cache._conn.execute(
                "UPDATE results SET payload = ? WHERE key = ?", ("{not json", "k")
            )
            cache._conn.commit()
            assert cache.get("k") is None
            assert cache.stats.misses == 1
            assert not cache.contains("k")  # corrupt row was evicted

    def test_persists_across_connections(self, trace, tmp_path):
        path = tmp_path / "cache.sqlite"
        result = self.run_one(trace)
        with ResultCache(path) as cache:
            cache.put("k", result)
        with ResultCache(path) as cache:
            restored = cache.get("k")
        assert restored is not None
        assert restored.makespan == result.makespan

    def test_default_path_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("SIMMR_CACHE_DIR", str(tmp_path / "xdg"))
        assert default_cache_path() == tmp_path / "xdg" / "results.sqlite"


class TestCacheKey:
    CONFIG = {"map_slots": 64, "reduce_slots": 64, "slowstart": 0.05}

    def test_stable(self):
        assert cache_key("td", "sid", self.CONFIG) == cache_key("td", "sid", self.CONFIG)

    def test_key_order_irrelevant(self):
        reordered = dict(reversed(list(self.CONFIG.items())))
        assert cache_key("td", "sid", self.CONFIG) == cache_key("td", "sid", reordered)

    def test_sensitive_to_every_part(self):
        base = cache_key("td", "sid", self.CONFIG)
        assert cache_key("other", "sid", self.CONFIG) != base
        assert cache_key("td", "other", self.CONFIG) != base
        assert cache_key("td", "sid", {**self.CONFIG, "slowstart": 1.0}) != base


class TestTraceDigest:
    def test_stable_and_content_addressed(self, rng, trace):
        assert trace_digest(trace) == trace_digest(list(trace))
        shorter = trace[:2]
        assert trace_digest(shorter) != trace_digest(trace)
        shifted = [TraceJob(trace[0].profile, 1.0)] + list(trace[1:])
        assert trace_digest(shifted) != trace_digest(trace)


# --------------------------------------------------------------------------- #
# digest recorder
# --------------------------------------------------------------------------- #

class TestDigestRecorder:
    def test_matches_full_sanitizer_digest(self, trace):
        def run(sanitizer):
            engine = SimulatorEngine(
                ClusterConfig(16, 16), FIFOScheduler(), sanitizer=sanitizer
            )
            engine.run(trace)

        full = Sanitizer(digest=EventDigest(keep_events=False))
        run(full)
        light = DigestRecorder()
        run(light)
        assert light.hexdigest() == full.digest.hexdigest()

    def test_reset_between_runs(self, trace):
        recorder = DigestRecorder()
        engine = SimulatorEngine(
            ClusterConfig(16, 16), FIFOScheduler(), sanitizer=recorder
        )
        engine.run(trace)
        first = recorder.hexdigest()
        engine2 = SimulatorEngine(
            ClusterConfig(16, 16), FIFOScheduler(), sanitizer=recorder
        )
        engine2.run(trace)
        assert recorder.hexdigest() == first  # begin_run resets state


# --------------------------------------------------------------------------- #
# scheduler specs
# --------------------------------------------------------------------------- #

def _record_seed_resolver(name, kwargs):
    scheduler = make_scheduler("fifo")
    scheduler.received_seed = kwargs.pop("seed", None)
    return scheduler


class TestSchedulerSpec:
    def test_identity_is_stable_and_kwargs_sensitive(self):
        a = SchedulerSpec(name="minedf", kwargs=(("bound", "upper"),))
        b = SchedulerSpec(name="minedf", kwargs=(("bound", "lower"),))
        assert a.identity() == a.identity()
        assert a.identity() != b.identity()
        assert json.loads(a.identity().split(":", 2)[2]) == {"bound": "upper"}

    def test_inline_has_no_identity(self):
        spec = SchedulerSpec.inline("custom", FIFOScheduler)
        assert not spec.cacheable
        with pytest.raises(ValueError, match="no identity"):
            spec.identity()
        assert isinstance(spec.build(0), FIFOScheduler)

    def test_registry_and_zoo_kinds(self):
        assert SchedulerSpec(name="fifo").build(0).__class__.__name__ == "FIFOScheduler"
        zoo = SchedulerSpec(kind="zoo", name="Fair")
        assert zoo.build(0).__class__.__name__ == "FairScheduler"
        with pytest.raises(ValueError, match="unknown zoo policy"):
            SchedulerSpec(kind="zoo", name="nope").build(0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown scheduler spec kind"):
            SchedulerSpec(kind="martian", name="x").build(0)

    def test_registered_kind_receives_seed(self, trace):
        register_spec_kind("test-seeded", _record_seed_resolver)
        spec = SchedulerSpec(kind="test-seeded", name="any", seeded=True)
        scheduler = spec.build(1234)
        assert scheduler.received_seed == 1234
        unseeded = SchedulerSpec(kind="test-seeded", name="any").build(1234)
        assert unseeded.received_seed is None

    def test_derived_seed_deterministic(self):
        a = _derive_seed("td", "sid", "{}")
        assert a == _derive_seed("td", "sid", "{}")
        assert a != _derive_seed("td2", "sid", "{}")
        assert 0 <= a < 2**63


# --------------------------------------------------------------------------- #
# simulate_many: the digest-identity contract
# --------------------------------------------------------------------------- #

class TestSimulateMany:
    def test_serial_parallel_cached_identical(self, trace):
        tasks = grid_tasks()
        traces = {"t": trace}
        serial = simulate_many(traces, tasks, workers=0, cache=None)
        parallel = simulate_many(traces, tasks, workers=2, cache=None)
        with ResultCache(":memory:") as cache:
            cold = simulate_many(traces, tasks, workers=2, cache=cache)
            warm = simulate_many(traces, tasks, workers=0, cache=cache)

        digests = [o.result.event_digest for o in serial]
        assert all(d is not None for d in digests)
        for other in (parallel, cold, warm):
            assert [o.result.event_digest for o in other] == digests
        assert [o.result.makespan for o in parallel] == [
            o.result.makespan for o in serial
        ]
        assert all(not o.cached for o in cold)
        assert all(o.cached for o in warm)

    def test_outcomes_in_task_order(self, trace):
        tasks = grid_tasks(n_schedulers=3)
        outcomes = simulate_many({"t": trace}, tasks, workers=2)
        assert [o.task for o in outcomes] == tasks

    def test_resume_from_partial_cache(self, trace):
        tasks = grid_tasks()
        with ResultCache(":memory:") as cache:
            simulate_many({"t": trace}, tasks[:2], cache=cache)
            assert len(cache) == 2
            # "Interrupted" after two cells: the re-run of the full grid
            # only executes the remaining cells.
            outcomes = simulate_many({"t": trace}, tasks, cache=cache)
            assert [o.cached for o in outcomes] == [True, True, False, False]
            assert cache.stats.hits == 2
            assert len(cache) == 4

    def test_fresh_reexecutes_but_stores(self, trace):
        tasks = grid_tasks()
        with ResultCache(":memory:") as cache:
            first = simulate_many({"t": trace}, tasks, cache=cache)
            refreshed = simulate_many({"t": trace}, tasks, cache=cache, fresh=True)
            assert all(not o.cached for o in refreshed)
            assert cache.stats.stores == 2 * len(tasks)
        assert [o.result.event_digest for o in refreshed] == [
            o.result.event_digest for o in first
        ]

    def test_changed_trace_misses(self, trace, rng):
        task = grid_tasks(n_schedulers=1, n_clusters=1)
        with ResultCache(":memory:") as cache:
            simulate_many({"t": trace}, task, cache=cache)
            other = [TraceJob(make_constant_profile(), 0.0)]
            outcomes = simulate_many({"t": other}, task, cache=cache)
            assert not outcomes[0].cached

    def test_inline_tasks_run_uncached(self, trace):
        tasks = grid_tasks() + [
            SimTask(trace_id="t", scheduler=SchedulerSpec.inline("adhoc", FIFOScheduler))
        ]
        with ResultCache(":memory:") as cache:
            outcomes = simulate_many({"t": trace}, tasks, workers=2, cache=cache)
            assert outcomes[-1].key is None
            assert len(cache) == len(tasks) - 1
            again = simulate_many({"t": trace}, tasks, cache=cache)
            assert [o.cached for o in again] == [True] * (len(tasks) - 1) + [False]

    def test_progress_callback(self, trace):
        seen = []
        tasks = grid_tasks()
        simulate_many(
            {"t": trace}, tasks, workers=2,
            progress=lambda done, total, outcome: seen.append((done, total)),
        )
        assert seen == [(i + 1, len(tasks)) for i in range(len(tasks))]

    def test_unknown_trace_id(self, trace):
        with pytest.raises(ValueError, match="unknown trace_id"):
            simulate_many({"t": trace}, [SimTask(trace_id="nope", scheduler=SchedulerSpec())])

    def test_no_digest_mode(self, trace):
        outcomes = simulate_many(
            {"t": trace}, grid_tasks(n_schedulers=1, n_clusters=1), digest=False
        )
        assert outcomes[0].result.event_digest is None


# --------------------------------------------------------------------------- #
# resource-safety regressions (the simlint CONC/RES findings fixed in
# cache.py / executor.py — each fix must preserve digest identity)
# --------------------------------------------------------------------------- #

class TestResourceSafetyRegressions:
    def _digest_of(self, trace):
        [outcome] = simulate_many(
            {"t": trace}, grid_tasks(n_schedulers=1, n_clusters=1), cache=None
        )
        return outcome

    def test_publish_failure_cleans_up_earlier_spill_files(self, trace, monkeypatch):
        """Failing to pack trace N must not strand spill files already
        published for earlier traces (RES003 fix in _PublishedTraces)."""
        import os
        import tempfile as _tempfile

        from repro.parallel import executor as ex
        from repro.trace import binfmt

        created = []
        real_mkstemp = _tempfile.mkstemp

        def recording_mkstemp(*args, **kwargs):
            fd, path = real_mkstemp(*args, **kwargs)
            created.append(path)
            return fd, path

        monkeypatch.setattr(_tempfile, "mkstemp", recording_mkstemp)
        real_pack = binfmt.pack_trace
        calls = {"n": 0}

        def failing_pack(t):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("disk full")
            return real_pack(t)

        monkeypatch.setattr(binfmt, "pack_trace", failing_pack)
        with pytest.raises(OSError, match="disk full"):
            ex._PublishedTraces({"a": trace, "b": trace}, "tempfile", 2)
        assert created, "first trace should have spilled to a tempfile"
        assert all(not os.path.exists(p) for p in created)

    def test_publish_failure_unlinks_earlier_segments(self, trace, monkeypatch):
        """Same contract for the shared-memory transport (RES001 fix)."""
        try:
            from multiprocessing import shared_memory
        except ImportError:
            pytest.skip("no shared_memory support")

        from repro.parallel import executor as ex
        from repro.trace import binfmt

        names = []
        real_publish = ex._PublishedTraces._publish_shm

        def recording_publish(self, payload):
            source = real_publish(self, payload)
            names.append(source[1])
            return source

        monkeypatch.setattr(ex._PublishedTraces, "_publish_shm", recording_publish)
        real_pack = binfmt.pack_trace
        calls = {"n": 0}

        def failing_pack(t):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("boom")
            return real_pack(t)

        monkeypatch.setattr(binfmt, "pack_trace", failing_pack)
        try:
            with pytest.raises(OSError, match="boom"):
                ex._PublishedTraces({"a": trace, "b": trace}, "shared_memory", 2)
        except (ImportError, OSError) as exc:  # platform without shm
            pytest.skip(f"shared memory unavailable: {exc}")
        assert names, "first trace should have been published"
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=names[0])

    def test_legacy_schema_migrates_and_preserves_digest(self, trace, tmp_path):
        """Opening a pre-``created_at`` cache file migrates it in place
        (now under the instance lock — CONC003 fix in _migrate) and a
        restored result keeps its event digest bit-for-bit."""
        import sqlite3

        path = tmp_path / "legacy.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE results ("
            " key TEXT PRIMARY KEY, trace_digest TEXT NOT NULL,"
            " scheduler TEXT NOT NULL, config TEXT NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        conn.commit()
        conn.close()

        fresh = self._digest_of(trace)
        assert fresh.result.event_digest is not None
        with ResultCache(path) as cache:
            cache.put(fresh.key, fresh.result)
            restored = cache.get(fresh.key)
        assert restored is not None
        assert restored.event_digest == fresh.result.event_digest

    def test_migrate_is_safe_under_concurrent_use(self, trace, tmp_path):
        """_migrate takes the (reentrant) lock itself, so it can run
        while other threads are mid-operation without corruption."""
        import threading

        fresh = self._digest_of(trace)
        with ResultCache(tmp_path / "cache.sqlite") as cache:
            errors = []

            def hammer():
                try:
                    for i in range(10):
                        cache._migrate()
                        cache.put(f"k{i}", fresh.result)
                        cache.get(f"k{i}")
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            restored = cache.get("k0")
        assert restored is not None
        assert restored.event_digest == fresh.result.event_digest

    def test_clear_and_prune_close_their_cursors(self, trace):
        """clear/prune read rowcount then close the cursor (RES002 fix)
        — the reported counts stay exact."""
        result = SimulatorEngine(ClusterConfig(16, 16), FIFOScheduler()).run(trace)
        with ResultCache(":memory:") as cache:
            for i in range(3):
                cache.put(f"k{i}", result)
            assert cache.prune_older_than(10_000) == 0
            assert cache.clear() == 3
            assert len(cache) == 0
