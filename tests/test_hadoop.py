"""Tests for the Hadoop cluster emulator and history-log writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TraceJob
from repro.hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from repro.hadoop.history import BASE_EPOCH_MS, JobHistoryWriter, format_job_id, ms
from repro.hadoop.node import TaskTracker
from repro.schedulers import FIFOScheduler, MinEDFScheduler

from conftest import make_constant_profile, make_random_profile


class TestTaskTracker:
    def test_slot_accounting(self):
        node = TaskTracker(0, map_slots=2, reduce_slots=1)
        node.occupy_map()
        node.occupy_map()
        assert node.free_map_slots == 0
        with pytest.raises(RuntimeError):
            node.occupy_map()
        node.release_map()
        assert node.free_map_slots == 1
        with pytest.raises(RuntimeError):
            node.release_reduce()

    def test_hostname_stable(self):
        assert TaskTracker(7).hostname == "node007"

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskTracker(0, map_slots=-1)
        with pytest.raises(ValueError):
            TaskTracker(0, speed_factor=0.0)


class TestHistoryWriter:
    def test_ms_conversion(self):
        assert ms(0.0) == BASE_EPOCH_MS
        assert ms(1.5) == BASE_EPOCH_MS + 1500

    def test_job_id_format(self):
        assert format_job_id(0) == "job_201011010000_0001"
        assert format_job_id(41) == "job_201011010000_0042"

    def test_render_contains_all_records(self):
        w = JobHistoryWriter(0, "WordCount")
        w.job_submitted(0.0)
        w.job_launched(0.1, 2, 1)
        w.map_started(0, 1.0, "node000")
        w.map_finished(0, 11.0, "node000")
        w.reduce_started(0, 12.0, "node001")
        w.reduce_finished(0, 20.0, 20.0, 25.0, "node001")
        w.job_finished(25.0, 2, 1)
        text = w.render()
        assert 'JOBNAME="WordCount"' in text
        assert 'TASK_TYPE="MAP"' in text
        assert 'SHUFFLE_FINISHED=' in text
        assert 'JOB_STATUS="SUCCESS"' in text
        assert text.count("\n") == 7

    def test_combine(self):
        a, b = JobHistoryWriter(0, "A"), JobHistoryWriter(1, "B")
        a.job_submitted(0.0)
        b.job_submitted(1.0)
        combined = JobHistoryWriter.combine([a, b])
        assert 'JOBNAME="A"' in combined and 'JOBNAME="B"' in combined


class TestEmulatorConfig:
    def test_defaults_match_paper_testbed(self):
        cfg = EmulatorConfig()
        assert cfg.num_nodes == 64
        assert cfg.map_slots_per_node == 1
        assert cfg.reduce_slots_per_node == 1
        agg = cfg.aggregate_cluster()
        assert agg.map_slots == 64 and agg.reduce_slots == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            EmulatorConfig(num_nodes=0)
        with pytest.raises(ValueError):
            EmulatorConfig(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            EmulatorConfig(node_speed_sigma=-0.1)
        with pytest.raises(ValueError):
            EmulatorConfig(min_map_percent_completed=2.0)


class TestEmulator:
    def small_config(self, **kw):
        defaults = dict(num_nodes=4, heartbeat_interval=1.0, seed=0)
        defaults.update(kw)
        return EmulatorConfig(**defaults)

    def test_all_jobs_complete(self, rng):
        trace = [
            TraceJob(make_random_profile(rng, f"j{i}", 8, 4), float(i * 5)) for i in range(3)
        ]
        result = HadoopClusterEmulator(self.small_config()).run(trace)
        assert all(j.completion_time is not None for j in result.jobs)
        assert result.makespan == max(j.completion_time for j in result.jobs)

    def test_noiseless_durations_match_profile(self):
        """With zero noise, each map runs exactly its profile duration."""
        cfg = self.small_config(node_speed_sigma=0.0, task_jitter_sigma=0.0)
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        result = HadoopClusterEmulator(cfg).run([TraceJob(profile, 0.0)])
        for task in result.tasks:
            assert task.end - task.start == pytest.approx(10.0)

    def test_heartbeat_quantizes_task_starts(self):
        """Tasks start only on (staggered) heartbeats."""
        cfg = self.small_config(node_speed_sigma=0.0, task_jitter_sigma=0.0)
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        result = HadoopClusterEmulator(cfg).run([TraceJob(profile, 0.0)])
        for task in result.tasks:
            offset = cfg.heartbeat_interval * task.node_id / cfg.num_nodes
            phase = (task.start - offset) % cfg.heartbeat_interval
            assert min(phase, cfg.heartbeat_interval - phase) < 1e-9

    def test_per_node_slots_respected(self, rng):
        cfg = self.small_config(map_slots_per_node=2)
        trace = [TraceJob(make_random_profile(rng, "big", 40, 8), 0.0)]
        result = HadoopClusterEmulator(cfg).run(trace)
        # At any instant, each node runs at most 2 maps.
        for node_id in range(cfg.num_nodes):
            intervals = [
                (t.start, t.end)
                for t in result.tasks
                if t.kind == "map" and t.node_id == node_id
            ]
            events = sorted(
                [(s, 1) for s, _ in intervals] + [(e, -1) for _, e in intervals],
                key=lambda e: (e[0], e[1]),
            )
            running = 0
            for _, d in events:
                running += d
                assert running <= 2

    def test_first_wave_shuffle_completes_after_map_stage(self):
        cfg = self.small_config(node_speed_sigma=0.0, task_jitter_sigma=0.0)
        profile = make_constant_profile(
            num_maps=8, num_reduces=2, map_s=10.0, first_shuffle_s=5.0, reduce_s=3.0
        )
        result = HadoopClusterEmulator(cfg).run([TraceJob(profile, 0.0)])
        map_end = max(t.end for t in result.tasks if t.kind == "map")
        for task in result.tasks:
            if task.kind == "reduce" and task.first_wave:
                assert task.shuffle_end == pytest.approx(map_end + 5.0)

    def test_determinism(self, rng):
        trace = [TraceJob(make_random_profile(rng, "j", 10, 5), 0.0)]
        r1 = HadoopClusterEmulator(self.small_config()).run(trace)
        r2 = HadoopClusterEmulator(self.small_config()).run(trace)
        assert r1.completion_times() == r2.completion_times()

    def test_history_parseable_by_mrprofiler(self, rng):
        from repro.mrprofiler import profile_history

        trace = [TraceJob(make_random_profile(rng, "app", 6, 3), 0.0)]
        result = HadoopClusterEmulator(self.small_config()).run(trace)
        profiled = profile_history(result.history_text())
        assert len(profiled) == 1
        assert profiled[0].profile.num_maps == 6
        assert profiled[0].profile.num_reduces == 3

    def test_minedf_caps_respected_in_emulator(self):
        profile = make_constant_profile(num_maps=16, num_reduces=4, map_s=10.0)
        cfg = self.small_config(
            num_nodes=8, node_speed_sigma=0.0, task_jitter_sigma=0.0
        )
        trace = [TraceJob(profile, 0.0, deadline=1000.0)]
        result = HadoopClusterEmulator(cfg, MinEDFScheduler()).run(trace)
        # Loose deadline: the job must not use all 8 map slots at once.
        intervals = [(t.start, t.end) for t in result.tasks if t.kind == "map"]
        events = sorted(
            [(s, 1) for s, _ in intervals] + [(e, -1) for _, e in intervals],
            key=lambda e: (e[0], e[1]),
        )
        peak = running = 0
        for _, d in events:
            running += d
            peak = max(peak, running)
        assert peak < 8
        assert result.jobs[0].completion_time <= 1000.0

    def test_idle_gap_skipping_preserves_correctness(self, rng):
        """Jobs separated by a huge gap still run correctly (and fast)."""
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        trace = [TraceJob(profile, 0.0), TraceJob(profile, 50000.0)]
        result = HadoopClusterEmulator(self.small_config()).run(trace)
        assert result.jobs[1].start_time >= 50000.0
        assert result.jobs[1].duration < 100.0
        # Far fewer events than heartbeating through the 50000s gap would take.
        assert result.events_processed < 10000

    def test_relative_deadline_exceeded_metric(self):
        profile = make_constant_profile(num_maps=4, num_reduces=0, map_s=10.0)
        cfg = self.small_config(node_speed_sigma=0.0, task_jitter_sigma=0.0)
        trace = [TraceJob(profile, 0.0, deadline=5.0)]  # impossible deadline
        result = HadoopClusterEmulator(cfg).run(trace)
        assert result.relative_deadline_exceeded() > 0.0
