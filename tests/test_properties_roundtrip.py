"""Cross-subsystem property tests (hypothesis): round trips and exact laws.

These tie the pieces together: profiles survive the emulator-to-
MRProfiler loop, traces and results survive serialization, and the
engine's map stage is *exactly* the greedy-makespan schedule the ARIA
model assumes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ClusterConfig, TraceJob, simulate
from repro.core.results_io import result_from_dict, result_to_dict
from repro.hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from repro.models.bounds import greedy_makespan
from repro.mrprofiler.profiler import profile_history
from repro.schedulers import FIFOScheduler
from repro.trace.database import TraceDatabase
from repro.trace.schema import trace_from_dict, trace_to_dict

durations = st.floats(min_value=0.5, max_value=200.0)


@st.composite
def small_profiles(draw):
    from conftest import make_constant_profile

    num_maps = draw(st.integers(min_value=1, max_value=10))
    num_reduces = draw(st.integers(min_value=0, max_value=5))
    return make_constant_profile(
        num_maps=num_maps,
        num_reduces=num_reduces,
        map_s=draw(durations),
        first_shuffle_s=draw(durations),
        typical_shuffle_s=draw(durations),
        reduce_s=draw(durations),
    )


@st.composite
def random_array_profiles(draw, max_maps=15, max_reduces=8):
    from repro.core import JobProfile

    num_maps = draw(st.integers(min_value=1, max_value=max_maps))
    num_reduces = draw(st.integers(min_value=0, max_value=max_reduces))
    kwargs = dict(
        name=draw(st.sampled_from(["alpha", "beta", "gamma"])),
        num_maps=num_maps,
        num_reduces=num_reduces,
        map_durations=np.array(
            draw(st.lists(durations, min_size=num_maps, max_size=num_maps))
        ),
        first_shuffle_durations=(
            np.array(draw(st.lists(durations, min_size=1, max_size=4)))
            if num_reduces
            else np.empty(0)
        ),
        typical_shuffle_durations=(
            np.array(draw(st.lists(durations, min_size=1, max_size=4)))
            if num_reduces
            else np.empty(0)
        ),
        reduce_durations=(
            np.array(draw(st.lists(durations, min_size=num_reduces, max_size=num_reduces)))
            if num_reduces
            else np.empty(0)
        ),
    )
    return JobProfile(**kwargs)


class TestEmulatorProfilerRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(profile=random_array_profiles())
    def test_zero_noise_recovers_durations(self, profile):
        """emulate (no noise) -> history log -> MRProfiler ~= identity."""
        cfg = EmulatorConfig(
            num_nodes=8, heartbeat_interval=1.0,
            node_speed_sigma=0.0, task_jitter_sigma=0.0, seed=0,
        )
        result = HadoopClusterEmulator(cfg).run([TraceJob(profile, 0.0)])
        recovered = profile_history(result.history_text())[0].profile
        assert recovered.num_maps == profile.num_maps
        assert recovered.num_reduces == profile.num_reduces
        # Map durations survive exactly (up to log ms rounding); the
        # recorded order may differ from the profile array's cyclic order,
        # so compare as multisets.
        expected = sorted(profile.map_duration(i) for i in range(profile.num_maps))
        got = sorted(recovered.map_durations)
        assert np.allclose(got, expected, atol=2.5e-3)
        expected_red = sorted(profile.reduce_duration(i) for i in range(profile.num_reduces))
        assert np.allclose(sorted(recovered.reduce_durations), expected_red, atol=2.5e-3)


class TestSerializationRoundTrips:
    @settings(max_examples=25, deadline=None)
    @given(
        profiles=st.lists(random_array_profiles(), min_size=1, max_size=4),
        data=st.data(),
    )
    def test_trace_round_trip(self, profiles, data):
        trace = []
        t = 0.0
        for i, profile in enumerate(profiles):
            t += data.draw(st.floats(min_value=0, max_value=100))
            deadline = data.draw(
                st.one_of(st.none(), st.floats(min_value=t + 1, max_value=t + 1e5))
            )
            depends_on = (
                data.draw(st.one_of(st.none(), st.integers(min_value=0, max_value=i - 1)))
                if i > 0
                else None
            )
            trace.append(TraceJob(profile, t, deadline, depends_on))
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert len(rebuilt) == len(trace)
        for a, b in zip(trace, rebuilt):
            assert a.submit_time == b.submit_time
            assert a.deadline == b.deadline
            assert a.depends_on == b.depends_on
            assert np.array_equal(a.profile.map_durations, b.profile.map_durations)

    @settings(max_examples=15, deadline=None)
    @given(profile=random_array_profiles(), seed=st.integers(min_value=0, max_value=100))
    def test_result_round_trip_preserves_replay(self, profile, seed):
        rng = np.random.default_rng(seed)
        trace = [TraceJob(profile, float(rng.uniform(0, 10)))]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.completion_times() == result.completion_times()
        assert rebuilt.makespan == result.makespan

    @settings(max_examples=15, deadline=None)
    @given(profile=random_array_profiles())
    def test_database_round_trip_replays_identically(self, profile):
        trace = [TraceJob(profile, 0.0)]
        with TraceDatabase() as db:
            db.save_trace("t", trace)
            loaded = db.load_trace("t")
        a = simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))
        b = simulate(loaded, FIFOScheduler(), ClusterConfig(4, 4))
        assert a.completion_times() == b.completion_times()


class TestEngineGreedyLaw:
    @settings(max_examples=40, deadline=None)
    @given(
        profile=random_array_profiles(max_reduces=0),
        map_slots=st.integers(min_value=1, max_value=8),
    )
    def test_map_stage_is_exactly_greedy_makespan(self, profile, map_slots):
        """The engine's map stage equals the greedy assignment the ARIA
        bounds are proven against — same durations, same dispatch order."""
        result = simulate(
            [TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(map_slots, 1)
        )
        durations_in_order = [profile.map_duration(i) for i in range(profile.num_maps)]
        expected = greedy_makespan(durations_in_order, map_slots)
        assert result.jobs[0].map_stage_end == pytest.approx(expected)
