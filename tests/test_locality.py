"""Tests for HDFS placement, locality modeling and delay scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TraceJob
from repro.hadoop import EmulatorConfig, HadoopClusterEmulator
from repro.hadoop.hdfs import HdfsPlacement, locality_of

from conftest import make_constant_profile


class TestHdfsPlacement:
    def test_replicas_distinct(self, rng):
        placement = HdfsPlacement(num_nodes=32, rack_size=16, replication=3)
        for _ in range(100):
            replicas = placement.place_block(rng)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert all(0 <= r < 32 for r in replicas)

    def test_at_most_two_replicas_per_rack(self, rng):
        placement = HdfsPlacement(num_nodes=48, rack_size=16, replication=3)
        for _ in range(100):
            replicas = placement.place_block(rng)
            per_rack: dict[int, int] = {}
            for r in replicas:
                rack = placement.rack_of(r)
                per_rack[rack] = per_rack.get(rack, 0) + 1
            assert max(per_rack.values()) <= 2

    def test_spans_two_racks_when_possible(self, rng):
        placement = HdfsPlacement(num_nodes=32, rack_size=16, replication=3)
        for _ in range(50):
            racks = {placement.rack_of(r) for r in placement.place_block(rng)}
            assert len(racks) == 2

    def test_replication_clamped_to_cluster(self, rng):
        placement = HdfsPlacement(num_nodes=2, rack_size=16, replication=3)
        assert len(placement.place_block(rng)) == 2

    def test_place_job(self, rng):
        placement = HdfsPlacement(num_nodes=16, rack_size=8)
        blocks = placement.place_job(10, rng)
        assert len(blocks) == 10

    def test_rack_of(self):
        placement = HdfsPlacement(num_nodes=32, rack_size=16)
        assert placement.rack_of(0) == 0
        assert placement.rack_of(15) == 0
        assert placement.rack_of(16) == 1
        assert placement.num_racks == 2
        with pytest.raises(ValueError):
            placement.rack_of(99)

    def test_locality_of(self):
        placement = HdfsPlacement(num_nodes=32, rack_size=8)
        replicas = (0, 9, 10)  # racks 0 and 1
        assert locality_of(0, replicas, placement) == "node"
        assert locality_of(3, replicas, placement) == "rack"   # rack 0
        assert locality_of(25, replicas, placement) == "remote"  # rack 3

    def test_validation(self):
        with pytest.raises(ValueError):
            HdfsPlacement(num_nodes=0)
        with pytest.raises(ValueError):
            HdfsPlacement(num_nodes=4, rack_size=0)
        with pytest.raises(ValueError):
            HdfsPlacement(num_nodes=4, replication=0)


def small_jobs_trace(n_jobs: int = 30, maps: int = 4):
    profile = make_constant_profile(num_maps=maps, num_reduces=0, map_s=12.0)
    return [TraceJob(profile, i * 1.0) for i in range(n_jobs)]


def run_locality(wait: float, seed: int = 2, **cfg_kw):
    defaults = dict(
        num_nodes=32, rack_size=16, heartbeat_interval=1.0,
        model_locality=True, locality_wait=wait, seed=seed,
    )
    defaults.update(cfg_kw)
    return HadoopClusterEmulator(EmulatorConfig(**defaults)).run(small_jobs_trace())


class TestLocalityModeling:
    def test_every_map_gets_a_locality_level(self):
        result = run_locality(0.0)
        for task in result.tasks:
            if task.kind == "map":
                assert task.locality in ("node", "rack", "remote")

    def test_fractions_sum_to_one(self):
        frac = run_locality(0.0).locality_fractions()
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_locality_off_records_nothing(self):
        cfg = EmulatorConfig(num_nodes=8, heartbeat_interval=1.0, seed=0)
        result = HadoopClusterEmulator(cfg).run(small_jobs_trace(4))
        assert all(t.locality is None for t in result.tasks)
        with pytest.raises(ValueError, match="model_locality"):
            result.locality_fractions()

    def test_non_local_maps_run_slower(self):
        result = run_locality(0.0, node_speed_sigma=0.0, task_jitter_sigma=0.0)
        durations = {"node": [], "rack": [], "remote": []}
        for t in result.tasks:
            if t.kind == "map":
                durations[t.locality].append(t.end - t.start)
        assert np.mean(durations["node"]) == pytest.approx(12.0)
        if durations["rack"]:
            assert np.mean(durations["rack"]) == pytest.approx(12.0 * 1.15, rel=1e-6)

    def test_all_jobs_complete(self):
        result = run_locality(3.0)
        assert all(j.completion_time is not None for j in result.jobs)

    def test_determinism(self):
        a = run_locality(3.0, seed=7)
        b = run_locality(3.0, seed=7)
        assert a.completion_times() == b.completion_times()

    def test_validation(self):
        with pytest.raises(ValueError):
            EmulatorConfig(locality_wait=-1.0)
        with pytest.raises(ValueError):
            EmulatorConfig(rack_penalty=0.9)
        with pytest.raises(ValueError):
            EmulatorConfig(rack_penalty=1.5, remote_penalty=1.2)


class TestDelayScheduling:
    def test_waiting_improves_node_locality(self):
        """The delay-scheduling result: a few seconds of patience turns
        most assignments node-local."""
        greedy = run_locality(0.0).locality_fractions()
        patient = run_locality(10.0).locality_fractions()
        assert patient["node"] > greedy["node"] + 0.2

    def test_monotone_in_wait(self):
        fracs = [run_locality(w).locality_fractions()["node"] for w in (0.0, 3.0, 10.0)]
        assert fracs[0] <= fracs[1] + 0.05
        assert fracs[1] <= fracs[2] + 0.05

    def test_waiting_does_not_explode_makespan(self):
        """Short waits trade tiny scheduling delays for faster tasks."""
        greedy = run_locality(0.0)
        patient = run_locality(3.0)
        assert patient.makespan < 1.2 * greedy.makespan

    def test_works_with_failures_and_speculation(self):
        result = run_locality(
            3.0, task_failure_rate=0.15, speculative_execution=True,
            node_speed_sigma=0.3,
        )
        assert all(j.completion_time is not None for j in result.jobs)
        # Successful attempts still cover every task exactly once.
        winners = {
            (t.job_id, t.index)
            for t in result.tasks
            if t.kind == "map" and not t.failed and not t.killed
        }
        expected = {(j.job_id, i) for j in result.jobs for i in range(j.num_maps)}
        assert winners == expected


class TestRemoteLocality:
    def test_remote_possible_with_many_racks(self):
        """With >2 racks some assignments land off every replica rack."""
        profile = make_constant_profile(num_maps=2, num_reduces=0, map_s=12.0)
        trace = [TraceJob(profile, i * 0.5) for i in range(40)]
        cfg = EmulatorConfig(
            num_nodes=32, rack_size=4, heartbeat_interval=1.0,
            model_locality=True, locality_wait=0.0, seed=1,
        )
        result = HadoopClusterEmulator(cfg).run(trace)
        levels = {t.locality for t in result.tasks if t.kind == "map"}
        assert "remote" in levels or "rack" in levels
        frac = result.locality_fractions()
        assert frac["node"] < 1.0
