"""Tests for the simulation service (repro.service).

Covers the subsystem's contract end to end: protocol validation,
cache-front behaviour, digest identity between service and local
replays under concurrent clients, bounded-queue backpressure (503 +
Retry-After, never a hang), per-request timeouts, metrics exposure,
and graceful drain with jobs still in flight.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.core import ClusterConfig
from repro.parallel import ResultCache, SchedulerSpec, SimTask, simulate_many
from repro.service import (
    JobManager,
    ProtocolError,
    QueueFullError,
    ServiceClient,
    ServiceClosedError,
    ServiceConfig,
    ServiceError,
    ServiceMetrics,
    ServiceRejected,
    SimulationServer,
    parse_request,
    request_document,
)
from repro.trace.arrivals import ExponentialArrivals
from repro.trace.schema import save_trace, trace_to_dict
from repro.trace.synthetic import SyntheticTraceGen
from repro.workloads.apps import make_app_specs


def make_trace(jobs: int = 4, seed: int = 3):
    gen = SyntheticTraceGen(
        list(make_app_specs().values()), ExponentialArrivals(50.0), seed=seed
    )
    return gen.generate(jobs)


@pytest.fixture(scope="module")
def trace():
    return make_trace()


def local_digest(trace, scheduler="fifo", cluster=ClusterConfig(64, 64), slowstart=0.05):
    task = SimTask(
        trace_id="t",
        scheduler=SchedulerSpec(kind="registry", name=scheduler),
        cluster=cluster,
        slowstart=slowstart,
    )
    [outcome] = simulate_many({"t": trace}, [task], cache=None)
    return outcome.result.event_digest


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(
        port=0,
        workers=2,
        queue_size=8,
        cache=tmp_path / "service.sqlite",
        trace_root=tmp_path,
        request_timeout=60.0,
    )
    with SimulationServer(config).start() as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=60.0)


# --------------------------------------------------------------------------- #
# protocol validation
# --------------------------------------------------------------------------- #

class TestProtocol:
    def doc(self, trace):
        return request_document(trace=trace)

    def test_round_trip(self, trace):
        request = parse_request(self.doc(trace))
        assert len(request.trace) == len(trace)
        assert request.scheduler.name == "fifo"
        assert request.cluster == ClusterConfig(64, 64)

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            parse_request([1, 2, 3])

    def test_rejects_unknown_top_level_key(self, trace):
        doc = {**self.doc(trace), "slowstrat": 0.5}
        with pytest.raises(ProtocolError, match="unknown request key"):
            parse_request(doc)

    def test_rejects_unknown_config_key(self, trace):
        doc = self.doc(trace)
        doc["config"]["slowstrat"] = 0.5
        with pytest.raises(ProtocolError, match="unknown config key"):
            parse_request(doc)

    def test_rejects_unknown_scheduler(self, trace):
        doc = {**self.doc(trace), "scheduler": "does-not-exist"}
        with pytest.raises(ProtocolError, match="cannot build scheduler"):
            parse_request(doc)

    def test_rejects_bad_scheduler_kind(self, trace):
        doc = {**self.doc(trace), "scheduler": {"kind": "nope", "name": "fifo"}}
        with pytest.raises(ProtocolError, match="unknown scheduler kind"):
            parse_request(doc)

    def test_rejects_trace_and_trace_path(self, trace):
        doc = {**self.doc(trace), "trace_path": "x.json"}
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_request(doc)

    def test_rejects_bad_slots(self, trace):
        doc = self.doc(trace)
        doc["config"]["map_slots"] = 0
        with pytest.raises(ProtocolError, match="positive integer"):
            parse_request(doc)

    def test_rejects_bad_slowstart(self, trace):
        doc = self.doc(trace)
        doc["config"]["slowstart"] = 1.5
        with pytest.raises(ProtocolError, match="slowstart"):
            parse_request(doc)

    def test_trace_path_requires_root(self, trace):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"trace_path": "t.json"}, trace_root=None)
        assert excinfo.value.status == 403

    def test_trace_path_escape_rejected(self, tmp_path):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"trace_path": "../../etc/passwd"}, trace_root=tmp_path)
        assert excinfo.value.status == 403

    def test_trace_path_missing_is_404(self, tmp_path):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"trace_path": "nope.json"}, trace_root=tmp_path)
        assert excinfo.value.status == 404

    def test_trace_path_loads(self, trace, tmp_path):
        save_trace(trace, tmp_path / "t.json")
        request = parse_request({"trace_path": "t.json"}, trace_root=tmp_path)
        assert len(request.trace) == len(trace)

    def test_empty_trace_rejected(self):
        with pytest.raises(ProtocolError, match="no jobs"):
            parse_request({"trace": trace_to_dict([])})

    def test_request_document_rejects_inline_spec(self, trace):
        from repro.schedulers import FIFOScheduler

        spec = SchedulerSpec.inline("adhoc", FIFOScheduler)
        with pytest.raises(ValueError, match="inline"):
            request_document(trace=trace, scheduler=spec)


# --------------------------------------------------------------------------- #
# job manager (no HTTP)
# --------------------------------------------------------------------------- #

class TestJobManager:
    def request(self, trace, **kwargs):
        return parse_request(request_document(trace=trace, **kwargs))

    def test_executes_and_caches(self, trace, tmp_path):
        cache = ResultCache(tmp_path / "c.sqlite")
        with JobManager(workers=1, queue_size=4, cache=cache) as manager:
            request = self.request(trace)
            first = manager.submit(request)
            assert first.wait(60)
            assert first.error is None
            assert first.outcome is not None and not first.outcome.cached
            second = manager.submit(request)
            assert second.wait(5)
            assert second.outcome is not None and second.outcome.cached
            assert second.outcome.result.event_digest == first.outcome.result.event_digest
            assert manager.executed == 1
            assert manager.front_hits == 1
        cache.close()

    def test_queue_overflow_raises(self, trace):
        release = threading.Event()
        started = threading.Event()

        def stall(request):
            started.set()
            release.wait(30)
            raise RuntimeError("stalled job never completes normally")

        manager = JobManager(workers=1, queue_size=1, cache=None, execute_fn=stall)
        try:
            request = self.request(trace)
            blocked = manager.submit(request)   # occupies the worker
            assert started.wait(10)
            queued = manager.submit(request)    # fills the queue
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(request)         # bounces
            assert excinfo.value.retry_after >= 1.0
            release.set()
            assert blocked.wait(10) and queued.wait(10)
        finally:
            release.set()
            manager.close()

    def test_submit_after_close_raises(self, trace):
        manager = JobManager(workers=1, queue_size=2, cache=None)
        manager.close()
        with pytest.raises(ServiceClosedError):
            manager.submit(self.request(trace))

    def test_drain_completes_queued_jobs(self, trace):
        gate = threading.Event()
        ran = []

        def slow(request):
            gate.wait(10)
            ran.append(request.digest)
            task = request.task()
            [outcome] = simulate_many({request.digest: request.trace}, [task], cache=None)
            return outcome

        manager = JobManager(workers=1, queue_size=4, cache=None, execute_fn=slow)
        tickets = [manager.submit(self.request(trace)) for _ in range(3)]
        gate.set()
        manager.close(drain=True)  # must not deadlock; finishes the backlog
        assert all(t.done for t in tickets)
        assert all(t.error is None for t in tickets)
        assert len(ran) == 3

    def test_no_drain_fails_queued_jobs(self, trace):
        gate = threading.Event()

        def slow(request):
            gate.wait(10)
            task = request.task()
            [outcome] = simulate_many({request.digest: request.trace}, [task], cache=None)
            return outcome

        manager = JobManager(workers=1, queue_size=4, cache=None, execute_fn=slow)
        tickets = [manager.submit(self.request(trace)) for _ in range(3)]
        closer = threading.Thread(target=lambda: manager.close(drain=False))
        closer.start()
        gate.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert all(t.done for t in tickets)
        # The in-flight job finished; the backlog was cancelled.
        cancelled = [t for t in tickets if isinstance(t.error, ServiceClosedError)]
        assert len(cancelled) >= 1

    def test_worker_exception_reaches_ticket(self, trace):
        def boom(request):
            raise RuntimeError("engine exploded")

        with JobManager(workers=1, queue_size=2, cache=None, execute_fn=boom) as manager:
            ticket = manager.submit(self.request(trace))
            assert ticket.wait(10)
            assert isinstance(ticket.error, RuntimeError)


# --------------------------------------------------------------------------- #
# HTTP round trips
# --------------------------------------------------------------------------- #

class TestServiceEndToEnd:
    def test_digest_identical_to_local_replay(self, client, trace):
        reply = client.replay(trace, scheduler="fifo")
        assert not reply.cached
        assert reply.event_digest == local_digest(trace, "fifo")
        assert reply.result.makespan > 0
        assert reply.request_id.startswith("req-")

    def test_repeat_is_cache_hit_without_resimulation(self, server, client, trace):
        client.replay(trace, scheduler="fifo")
        executed_before = server.manager.executed
        reply = client.replay(trace, scheduler="fifo")
        assert reply.cached
        assert server.manager.executed == executed_before  # no re-simulation
        assert reply.event_digest == local_digest(trace, "fifo")

    def test_trace_path_request(self, server, client, trace, tmp_path):
        save_trace(trace, tmp_path / "shared.json")
        reply = client.replay(trace_path="shared.json")
        assert reply.event_digest == local_digest(trace)

    def test_concurrent_clients_each_get_their_own_result(self, client, trace):
        schedulers = ["fifo", "maxedf", "minedf", "fair"] * 2
        expected = {name: local_digest(trace, name) for name in set(schedulers)}
        replies: dict[int, object] = {}
        errors: list[BaseException] = []

        def hammer(index: int, name: str) -> None:
            try:
                replies[index] = (name, client.replay(trace, scheduler=name))
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i, name))
            for i, name in enumerate(schedulers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(replies) == len(schedulers)
        for name, reply in replies.values():
            assert reply.event_digest == expected[name], name

    def test_validation_errors_are_400(self, server):
        client = ServiceClient(server.url)
        status, _, payload = client._request(
            "/simulate", {"trace": {"schema_version": 99, "jobs": []}}
        )
        assert status == 400
        assert b"error" in payload

    def test_unknown_endpoint_404(self, client):
        status, _, _ = client._request("/nope", {"x": 1})
        assert status == 404

    def test_health_endpoint(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0

    def test_metrics_reflect_cache_hit(self, client, trace):
        client.replay(trace, scheduler="maxedf")
        client.replay(trace, scheduler="maxedf")
        page = client.metrics()
        assert 'simmr_requests_total{status="ok"} 1' in page
        assert 'simmr_requests_total{status="cached"} 1' in page
        assert 'simmr_cache_lookups_total{outcome="hit"} 1' in page
        assert "simmr_request_latency_seconds_count 2" in page
        assert 'quantile="0.95"' in page

    def test_request_timeout_yields_504(self, tmp_path, trace):
        gate = threading.Event()

        def stall(request):
            gate.wait(30)
            raise RuntimeError("unreached in a passing test")

        manager = JobManager(workers=1, queue_size=4, cache=None, execute_fn=stall)
        config = ServiceConfig(port=0, request_timeout=0.2)
        with SimulationServer(config, manager=manager).start() as server:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError) as excinfo:
                client.replay(trace)
            assert excinfo.value.status == 504
            gate.set()


class TestBackpressure:
    @pytest.fixture
    def saturated(self, trace):
        """A server whose single worker is held, with a 1-slot queue."""
        release = threading.Event()
        started = threading.Event()

        def stall(request):
            started.set()
            release.wait(30)
            task = request.task()
            [outcome] = simulate_many({request.digest: request.trace}, [task], cache=None)
            return outcome

        manager = JobManager(workers=1, queue_size=1, cache=None, execute_fn=stall)
        config = ServiceConfig(port=0, request_timeout=60.0)
        server = SimulationServer(config, manager=manager).start()
        try:
            client = ServiceClient(server.url, timeout=60.0)
            waiters = [
                threading.Thread(target=client.replay, args=(trace,), daemon=True)
                for _ in range(2)
            ]
            waiters[0].start()
            assert started.wait(10)  # worker occupied
            waiters[1].start()       # queue slot occupied
            deadline = threading.Event()
            for _ in range(100):
                if server.manager.depth >= 1:
                    break
                deadline.wait(0.05)
            yield server, client, release, waiters
        finally:
            release.set()
            server.shutdown()

    def test_overflow_is_503_with_retry_after(self, saturated, trace):
        server, client, release, waiters = saturated
        with pytest.raises(ServiceRejected) as excinfo:
            client.replay(trace)
        assert excinfo.value.retry_after >= 1.0
        release.set()
        for waiter in waiters:
            waiter.join(timeout=60)
            assert not waiter.is_alive()
        page = client.metrics()
        assert 'simmr_requests_total{status="rejected"} 1' in page

    def test_client_retries_honour_retry_after(self, saturated, trace):
        server, client, release, waiters = saturated
        slept: list[float] = []

        def fake_sleep(seconds: float) -> None:
            slept.append(seconds)
            release.set()  # unblock the worker so the retry succeeds

        retrying = ServiceClient(server.url, timeout=60.0, sleep=fake_sleep)
        reply = retrying.replay(trace, max_retries=5)
        assert reply.event_digest == local_digest(trace)
        assert slept and slept[0] >= 1.0

    def test_shutdown_mid_flight_drains_without_deadlock(self, saturated, trace):
        server, client, release, waiters = saturated
        release.set()
        server.shutdown()  # must complete every queued job and return
        for waiter in waiters:
            waiter.join(timeout=60)
            assert not waiter.is_alive()


# --------------------------------------------------------------------------- #
# metrics unit behaviour
# --------------------------------------------------------------------------- #

class TestServiceMetrics:
    def test_quantiles_over_reservoir(self):
        metrics = ServiceMetrics()
        for value in range(1, 101):
            metrics.observe_latency(value / 100.0)
        p50, p95 = metrics.latency_quantiles(0.50, 0.95)
        assert 0.45 <= p50 <= 0.55
        assert 0.90 <= p95 <= 1.00

    def test_render_contains_all_series(self):
        metrics = ServiceMetrics()
        metrics.count_request("ok")
        page = metrics.render(queue_depth=3, in_flight=1, workers=2,
                              cache_hits=4, cache_misses=6)
        assert "simmr_queue_depth 3" in page
        assert "simmr_jobs_in_flight 1" in page
        assert "simmr_workers 2" in page
        assert "simmr_cache_hit_rate 0.4" in page
        assert 'simmr_requests_total{status="ok"} 1' in page
        assert 'simmr_requests_total{status="timeout"} 0' in page

    def test_empty_reservoir_renders_zeros(self):
        page = ServiceMetrics().render()
        assert 'simmr_request_latency_seconds{quantile="0.5"} 0.000000' in page
        assert "simmr_request_latency_seconds_count 0" in page


# --------------------------------------------------------------------------- #
# server-side cache file reuse across restarts
# --------------------------------------------------------------------------- #

def test_cache_survives_server_restart(tmp_path, trace):
    cache_path = tmp_path / "persistent.sqlite"
    config = ServiceConfig(port=0, cache=cache_path)
    with SimulationServer(config).start() as first:
        reply = ServiceClient(first.url).replay(trace)
        assert not reply.cached
    with SimulationServer(ServiceConfig(port=0, cache=cache_path)).start() as second:
        reply = ServiceClient(second.url).replay(trace)
        assert reply.cached


def test_cache_path_is_created(tmp_path):
    nested = tmp_path / "deep" / "cache.sqlite"
    config = ServiceConfig(port=0, cache=nested)
    with SimulationServer(config).start():
        assert nested.parent.is_dir()
    assert Path(nested).exists()


# --------------------------------------------------------------------------- #
# inline-certified schedulers (scheduler source over the wire)
# --------------------------------------------------------------------------- #

_INLINE_FIFO = """\
from repro.schedulers.base import Scheduler


class TinyFifo(Scheduler):
    name = "TinyFifo"

    def _key(self, job):
        return (job.submit_time, job.job_id)

    def choose_next_map_task(self, job_queue):
        return min(job_queue, key=self._key, default=None)

    def choose_next_reduce_task(self, job_queue):
        return min(job_queue, key=self._key, default=None)
"""

_INLINE_WALLCLOCK = """\
import time


class WallclockScheduler:
    name = "Wallclock"

    def choose_next_map_task(self, job_queue):
        time.time()
        return job_queue[0] if job_queue else None

    def choose_next_reduce_task(self, job_queue):
        return job_queue[0] if job_queue else None
"""


def _inline_spec(source: str, name: str) -> SchedulerSpec:
    return SchedulerSpec(
        kind="inline-certified", name=name, kwargs=(("source", source),)
    )


class TestInlineCertifiedScheduler:
    def test_protocol_accepts_certified_source(self, trace):
        doc = request_document(
            trace=trace, scheduler=_inline_spec(_INLINE_FIFO, "TinyFifo")
        )
        request = parse_request(doc)
        assert request.scheduler.kind == "inline-certified"
        assert request.scheduler.name == "TinyFifo"

    def test_protocol_rejects_effectful_source_with_422(self, trace):
        doc = request_document(
            trace=trace,
            scheduler=_inline_spec(_INLINE_WALLCLOCK, "WallclockScheduler"),
        )
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(doc)
        assert excinfo.value.status == 422
        message = str(excinfo.value)
        assert "not service-safe" in message
        assert "nondeterministic-source" in message
        assert "time.time()" in message  # the witness chain's sink

    def test_protocol_requires_source_kwarg(self, trace):
        doc = request_document(trace=trace)
        doc["scheduler"] = {"kind": "inline-certified", "name": "TinyFifo"}
        with pytest.raises(ProtocolError, match="kwargs.source"):
            parse_request(doc)

    def test_protocol_caps_inline_source_size_with_413(self, trace):
        # Certification is CPU-bound work on unauthenticated input;
        # oversized submissions must be refused before analysis runs.
        from repro.analysis.certify import MAX_INLINE_SOURCE

        bloated = _INLINE_FIFO + "\n# pad\n" * (MAX_INLINE_SOURCE // 7)
        doc = request_document(
            trace=trace, scheduler=_inline_spec(bloated, "TinyFifo")
        )
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(doc)
        assert excinfo.value.status == 413
        assert "exceeds" in str(excinfo.value)

    def test_protocol_rejects_module_level_effects_with_422(self, trace):
        # Top-level statements run at exec time, before any predicate
        # can gate them — certification must refuse the module.
        source = "import os\nos.system('id')\n\n" + _INLINE_FIFO
        doc = request_document(
            trace=trace, scheduler=_inline_spec(source, "TinyFifo")
        )
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(doc)
        assert excinfo.value.status == 422
        assert "certification failed" in str(excinfo.value)

    def test_e2e_certified_source_replays_digest_identically(self, client, trace):
        spec = _inline_spec(_INLINE_FIFO, "TinyFifo")
        reply = client.replay(trace, scheduler=spec)
        assert reply.result.makespan > 0

        task = SimTask(
            trace_id="t", scheduler=spec, cluster=ClusterConfig(64, 64),
            slowstart=0.05,
        )
        [outcome] = simulate_many({"t": trace}, [task], cache=None)
        assert reply.event_digest == outcome.result.event_digest
        # The policy is FIFO-by-arrival, so it also matches the registry
        # scheduler's schedule, not just its own local replay.
        assert reply.event_digest == local_digest(trace, "fifo")

    def test_e2e_effectful_source_is_422(self, client, trace):
        spec = _inline_spec(_INLINE_WALLCLOCK, "WallclockScheduler")
        with pytest.raises(ServiceError) as excinfo:
            client.replay(trace, scheduler=spec)
        assert excinfo.value.status == 422
        assert "not service-safe" in excinfo.value.message
        assert "choose_next_map_task" in excinfo.value.message
