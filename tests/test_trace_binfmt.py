"""Columnar storage, the binary trace format, and zero-copy fan-out.

The correctness contract of the whole columnar/binary subsystem is a
single sentence: *every representation of a trace is the same trace* —
same ``trace_digest``, bit-for-bit identical durations, and identical
``event_digest`` when replayed.  These tests pin that sentence across
JSON ↔ binary ↔ columnar ↔ sqlite round-trips, the executor's
shared-memory/tempfile/pickle transports, the service's trace cache,
and the error paths of the binary parser.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import TraceColumns, TraceJob
from repro.core.columns import columns_from_trace, trace_from_columns
from repro.parallel.executor import (
    TRANSPORTS,
    SchedulerSpec,
    SimTask,
    last_fanout_stats,
    simulate_many,
)
from repro.sanitize.digest import trace_digest
from repro.service.tracecache import TraceCache
from repro.trace.binfmt import (
    BINARY_MAGIC,
    BINARY_VERSION,
    is_binary_trace_file,
    is_packed,
    load_columns,
    load_trace_auto,
    load_trace_bin,
    pack_trace,
    packed_digest,
    save_trace_bin,
    unpack_columns,
)
from repro.trace.database import TraceDatabase
from repro.trace.schema import load_trace, save_trace

from conftest import make_constant_profile, make_random_profile


def make_trace(rng, jobs=6, *, deadlines=True, depends=True, dedup=True):
    """A trace exercising every encoding edge the formats must carry."""
    trace = []
    shared = make_random_profile(rng, name="shared", num_maps=12, num_reduces=6)
    for i in range(jobs):
        if dedup and i % 3 == 0:
            profile = shared  # byte-identical vectors -> dedup path
        elif i % 3 == 1:
            profile = make_constant_profile(name=f"const{i}", num_maps=4, num_reduces=2)
        else:
            profile = make_random_profile(rng, name=f"rand{i}", num_maps=7, num_reduces=3)
        trace.append(
            TraceJob(
                profile=profile,
                submit_time=float(i) * 7.5,
                deadline=(float(i) * 7.5 + 500.0) if deadlines and i % 2 else None,
                depends_on=(i - 1) if depends and i % 4 == 3 else None,
            )
        )
    return trace


def assert_same_trace(a, b):
    """Bit-for-bit equality of everything the digest (and engine) sees."""
    assert trace_digest(a) == trace_digest(b)
    assert len(a) == len(b)
    for ja, jb in zip(a, b):
        assert ja.submit_time == jb.submit_time
        assert ja.deadline == jb.deadline
        assert ja.depends_on == jb.depends_on
        pa, pb = ja.profile, jb.profile
        assert (pa.name, pa.num_maps, pa.num_reduces) == (pb.name, pb.num_maps, pb.num_reduces)
        for phase in ("map", "first_shuffle", "typical_shuffle", "reduce"):
            va = getattr(pa, f"{phase}_durations")
            vb = getattr(pb, f"{phase}_durations")
            assert va.tobytes() == vb.tobytes()  # bit-for-bit, incl. NaN-safe


# --------------------------------------------------------------------------- #
# columnar storage
# --------------------------------------------------------------------------- #

class TestColumns:
    def test_round_trip_preserves_digest_and_bits(self, rng):
        trace = make_trace(rng)
        rebuilt = trace_from_columns(columns_from_trace(trace))
        assert_same_trace(trace, rebuilt)

    def test_views_share_one_buffer(self, rng):
        trace = make_trace(rng, dedup=True)
        columns = columns_from_trace(trace)
        jobs = columns.jobs()
        # Jobs 0 and 3 reuse the same profile: their views must alias
        # the same float64 span, not hold copies.
        a = jobs[0].profile.map_durations
        b = jobs[3].profile.map_durations
        assert np.shares_memory(a, b)
        assert not a.flags.writeable  # JobProfile's immutability holds

    def test_dedup_stores_identical_vectors_once(self, rng):
        trace = make_trace(rng, jobs=9, dedup=True)
        deduped = columns_from_trace(trace)
        total = sum(
            getattr(j.profile, f"{p}_durations").size
            for j in trace
            for p in ("map", "first_shuffle", "typical_shuffle", "reduce")
        )
        assert deduped.total_durations < total

    def test_none_deadline_and_dependency_encodings(self):
        profile = make_constant_profile()
        trace = [
            TraceJob(profile, 0.0, deadline=None, depends_on=None),
            TraceJob(profile, 1.0, deadline=50.0, depends_on=0),
        ]
        columns = columns_from_trace(trace)
        assert math.isnan(columns.deadlines[0]) and columns.depends_on[0] == -1
        rebuilt = columns.jobs()
        assert rebuilt[0].deadline is None and rebuilt[0].depends_on is None
        assert rebuilt[1].deadline == 50.0 and rebuilt[1].depends_on == 0

    def test_engine_accepts_columnar_views(self, rng, cluster64):
        from repro.core import simulate
        from repro.schedulers import make_scheduler

        trace = make_trace(rng, depends=False)
        direct = simulate(trace, make_scheduler("fifo"), cluster64)
        viewed = simulate(
            trace_from_columns(columns_from_trace(trace)),
            make_scheduler("fifo"),
            cluster64,
        )
        assert viewed.makespan == direct.makespan
        assert viewed.events_processed == direct.events_processed

    def test_column_length_mismatch_rejected(self, rng):
        columns = columns_from_trace(make_trace(rng, jobs=2))
        with pytest.raises(ValueError, match="lengths disagree"):
            TraceColumns(
                names=columns.names + ("extra",),
                submit_times=columns.submit_times,
                deadlines=columns.deadlines,
                depends_on=columns.depends_on,
                num_maps=columns.num_maps,
                num_reduces=columns.num_reduces,
                spans=columns.spans,
                data=columns.data,
            )


# --------------------------------------------------------------------------- #
# the binary format
# --------------------------------------------------------------------------- #

class TestBinaryFormat:
    def test_pack_unpack_round_trip(self, rng):
        trace = make_trace(rng)
        payload = pack_trace(trace)
        assert is_packed(payload)
        assert packed_digest(payload) == trace_digest(trace)
        columns, digest = unpack_columns(payload)
        assert digest == trace_digest(trace)
        assert_same_trace(trace, columns.jobs())

    def test_packing_is_deterministic(self, rng):
        trace = make_trace(rng)
        assert pack_trace(trace) == pack_trace(trace)

    def test_file_round_trip_mmap_and_read(self, rng, tmp_path):
        trace = make_trace(rng)
        path = tmp_path / "t.simmr"
        nbytes = save_trace_bin(trace, path)
        assert path.stat().st_size == nbytes
        assert is_binary_trace_file(path)
        for use_mmap in (True, False):
            assert_same_trace(trace, load_trace_bin(path, use_mmap=use_mmap))
        columns, digest = load_columns(path)
        assert digest == trace_digest(trace)

    def test_load_trace_auto_sniffs_both_formats(self, rng, tmp_path):
        trace = make_trace(rng)
        save_trace(trace, tmp_path / "t.json")
        save_trace_bin(trace, tmp_path / "t.simmr")
        assert_same_trace(
            load_trace_auto(tmp_path / "t.json"),
            load_trace_auto(tmp_path / "t.simmr"),
        )

    def test_json_binary_columnar_sqlite_cycle(self, rng, tmp_path):
        # The full satellite tour: JSON -> binary -> columnar -> sqlite.
        # The TraceDatabase leg does not persist depends_on, so run it
        # on a dependency-free trace.
        trace = make_trace(rng, depends=False)
        digest = trace_digest(trace)

        save_trace(trace, tmp_path / "t.json")
        from_json = load_trace(tmp_path / "t.json")
        assert trace_digest(from_json) == digest

        save_trace_bin(from_json, tmp_path / "t.simmr")
        from_bin = load_trace_bin(tmp_path / "t.simmr")
        assert trace_digest(from_bin) == digest

        columns = columns_from_trace(from_bin)
        from_columns = columns.jobs()
        assert trace_digest(from_columns) == digest

        with TraceDatabase(tmp_path / "t.sqlite") as db:
            db.save_trace("t", from_columns)
            from_db = db.load_trace("t")
        assert_same_trace(trace, from_db)

    def test_bad_magic_rejected(self, rng):
        payload = bytearray(pack_trace(make_trace(rng, jobs=2)))
        payload[:8] = b"NOTSIMMR"
        with pytest.raises(ValueError, match="bad magic"):
            unpack_columns(bytes(payload))

    def test_unknown_version_rejected(self, rng):
        payload = bytearray(pack_trace(make_trace(rng, jobs=2)))
        payload[8:10] = (BINARY_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(ValueError, match="version"):
            unpack_columns(bytes(payload))

    def test_truncation_rejected(self, rng):
        payload = pack_trace(make_trace(rng, jobs=2))
        with pytest.raises(ValueError, match="truncated"):
            unpack_columns(payload[: len(payload) // 2])
        with pytest.raises(ValueError, match="truncated"):
            unpack_columns(payload[:20])

    def test_malformed_digest_rejected(self, rng):
        payload = bytearray(pack_trace(make_trace(rng, jobs=2)))
        payload[40:72] = b"z" * 32  # not hex
        with pytest.raises(ValueError, match="digest"):
            unpack_columns(bytes(payload))

    def test_is_binary_trace_file_on_json_and_missing(self, rng, tmp_path):
        save_trace(make_trace(rng, jobs=2), tmp_path / "t.json")
        assert not is_binary_trace_file(tmp_path / "t.json")
        assert not is_binary_trace_file(tmp_path / "nope.simmr")
        assert BINARY_MAGIC == b"SIMMRBIN"


# --------------------------------------------------------------------------- #
# executor transports
# --------------------------------------------------------------------------- #

class TestTransports:
    @pytest.fixture
    def sweep(self, rng):
        trace = make_trace(rng, depends=False)
        tasks = [
            SimTask(trace_id="t", scheduler=SchedulerSpec(name=name))
            for name in ("fifo", "minedf", "maxedf", "fair")
        ]
        return {"t": trace}, tasks

    def test_all_transports_digest_identical(self, sweep):
        traces, tasks = sweep
        reference = [
            o.result.event_digest
            for o in simulate_many(traces, tasks, workers=0, cache=None)
        ]
        assert all(reference)
        for transport in TRANSPORTS:
            outcomes = simulate_many(
                traces, tasks, workers=2, cache=None, transport=transport
            )
            assert [o.result.event_digest for o in outcomes] == reference

    def test_shared_transports_ship_o1_bytes(self, sweep):
        traces, tasks = sweep
        simulate_many(traces, tasks, workers=2, cache=None, transport="shared_memory")
        shm = last_fanout_stats()
        simulate_many(traces, tasks, workers=2, cache=None, transport="pickle")
        pickled = last_fanout_stats()
        # Shared memory ships the trace once; per-worker bytes are just
        # the (name, size) descriptors — orders of magnitude below the
        # pickled job lists the legacy transport sends to every worker.
        assert shm.transport == "shared_memory"
        assert shm.bytes_per_worker < pickled.bytes_per_worker / 10
        assert pickled.payload_bytes == 0

    def test_unknown_transport_rejected(self, sweep):
        traces, tasks = sweep
        with pytest.raises(ValueError, match="transport"):
            simulate_many(traces, tasks, workers=2, cache=None, transport="carrier-pigeon")

    def test_no_shared_storage_leaks(self, sweep, tmp_path):
        import glob

        traces, tasks = sweep
        before_shm = set(glob.glob("/dev/shm/psm_*"))
        import tempfile

        before_tmp = set(glob.glob(f"{tempfile.gettempdir()}/simmr-trace-*"))
        simulate_many(traces, tasks, workers=2, cache=None, transport="auto")
        simulate_many(traces, tasks, workers=2, cache=None, transport="tempfile")
        assert set(glob.glob("/dev/shm/psm_*")) <= before_shm
        assert set(glob.glob(f"{tempfile.gettempdir()}/simmr-trace-*")) <= before_tmp


# --------------------------------------------------------------------------- #
# the service trace cache
# --------------------------------------------------------------------------- #

class TestTraceCache:
    def test_hit_serves_same_objects_and_digest(self, rng, tmp_path):
        trace = make_trace(rng)
        save_trace(trace, tmp_path / "t.json")
        cache = TraceCache(4)
        first, digest1 = cache.load(tmp_path / "t.json")
        second, digest2 = cache.load(tmp_path / "t.json")
        assert second is first and digest2 == digest1 == trace_digest(trace)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_binary_and_json_agree(self, rng, tmp_path):
        trace = make_trace(rng)
        save_trace(trace, tmp_path / "t.json")
        save_trace_bin(trace, tmp_path / "t.simmr")
        cache = TraceCache(4)
        from_json, digest_json = cache.load(tmp_path / "t.json")
        from_bin, digest_bin = cache.load(tmp_path / "t.simmr")
        assert digest_json == digest_bin
        assert_same_trace(list(from_json), list(from_bin))

    def test_mtime_change_invalidates(self, rng, tmp_path):
        import os

        trace = make_trace(rng, jobs=3)
        path = tmp_path / "t.json"
        save_trace(trace, path)
        cache = TraceCache(4)
        _, old_digest = cache.load(path)
        save_trace(make_trace(rng, jobs=5), path)
        os.utime(path, ns=(1, 1))  # force a distinct mtime_ns
        reloaded, new_digest = cache.load(path)
        assert len(reloaded) == 5 and new_digest != old_digest

    def test_lru_eviction(self, rng, tmp_path):
        cache = TraceCache(2)
        paths = []
        for i in range(3):
            path = tmp_path / f"t{i}.json"
            save_trace(make_trace(rng, jobs=2), path)
            paths.append(path)
            cache.load(path)
        assert len(cache) == 2
        assert paths[0] not in cache and paths[2] in cache
        assert cache.stats().evictions == 1

    def test_zero_capacity_disables(self, rng, tmp_path):
        path = tmp_path / "t.json"
        save_trace(make_trace(rng, jobs=2), path)
        cache = TraceCache(0)
        cache.load(path)
        cache.load(path)
        assert len(cache) == 0
        assert cache.stats().misses == 2

    def test_service_end_to_end_binary_trace_path(self, rng, tmp_path):
        """A served binary trace replays digest-identical to a local run."""
        from repro.core import ClusterConfig
        from repro.service import ServiceClient, ServiceConfig, SimulationServer

        trace = make_trace(rng, depends=False)
        save_trace_bin(trace, tmp_path / "t.simmr")
        [local] = simulate_many(
            {"t": trace},
            [SimTask(trace_id="t", scheduler=SchedulerSpec(name="fifo"))],
            cache=None,
        )
        config = ServiceConfig(
            port=0, workers=1, trace_root=tmp_path, cache=False
        )
        with SimulationServer(config) as server:
            server.start()
            client = ServiceClient(server.url)
            replies = [
                client.replay(
                    trace_path="t.simmr",
                    scheduler="fifo",
                    cluster=ClusterConfig(64, 64),
                )
                for _ in range(2)
            ]
            trace_stats = server.trace_cache.stats()
        assert [r.event_digest for r in replies] == [local.result.event_digest] * 2
        # Second request must have been served from the parsed-trace LRU.
        assert trace_stats.hits >= 1 and trace_stats.misses == 1
