"""Tests for the makespan bounds and the ARIA completion-time model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ClusterConfig, TraceJob, simulate
from repro.models import (
    estimate_completion_time,
    greedy_makespan,
    makespan_lower_bound,
    makespan_upper_bound,
    min_slots_for_deadline,
    model_coefficients,
)
from repro.schedulers import CappedFIFOScheduler, FIFOScheduler

from conftest import make_constant_profile, make_random_profile


class TestMakespanBounds:
    def test_greedy_single_slot_is_sum(self):
        assert greedy_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_greedy_enough_slots_is_max(self):
        assert greedy_makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_greedy_balances(self):
        # tasks 4,3,2,1 on 2 slots: (4,1) and (3,2) -> makespan 5
        assert greedy_makespan([4.0, 3.0, 2.0, 1.0], 2) == pytest.approx(5.0)

    def test_greedy_empty(self):
        assert greedy_makespan([], 3) == 0.0

    def test_greedy_rejects_negative(self):
        with pytest.raises(ValueError):
            greedy_makespan([-1.0], 1)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            makespan_lower_bound(-1, 1.0, 2)
        with pytest.raises(ValueError):
            makespan_upper_bound(1, 1.0, 1.0, 0)

    def test_zero_tasks(self):
        assert makespan_lower_bound(0, 5.0, 3) == 0.0
        assert makespan_upper_bound(0, 5.0, 5.0, 3) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=20),
    )
    def test_property_bounds_bracket_greedy(self, tasks, k):
        """The paper's claim: n*avg/k <= greedy <= (n-1)*avg/k + max."""
        arr = np.asarray(tasks)
        greedy = greedy_makespan(tasks, k)
        lower = makespan_lower_bound(len(tasks), float(arr.mean()), k)
        upper = makespan_upper_bound(len(tasks), float(arr.mean()), float(arr.max()), k)
        assert lower - 1e-9 <= greedy <= upper + 1e-9


class TestAriaModel:
    def test_constant_profile_lower_bound_exact(self):
        """For constant durations with slots dividing the task count the
        lower bound equals the true schedule."""
        profile = make_constant_profile(
            num_maps=8, num_reduces=4, map_s=10.0,
            first_shuffle_s=5.0, typical_shuffle_s=4.0, reduce_s=3.0,
        )
        t_low = estimate_completion_time(profile, 4, 2, bound="lower")
        # 2 map waves (20) + first shuffle 5 + (4/2 - 1) typical waves (4)
        # + 2 reduce-phase waves (6) = 35
        assert t_low == pytest.approx(20 + 5 + 4 + 6)

    def test_bound_ordering(self, random_profile):
        low = estimate_completion_time(random_profile, 4, 4, bound="lower")
        avg = estimate_completion_time(random_profile, 4, 4, bound="average")
        up = estimate_completion_time(random_profile, 4, 4, bound="upper")
        assert low <= avg <= up

    @settings(max_examples=40, deadline=None)
    @given(
        num_maps=st.integers(min_value=1, max_value=40),
        num_reduces=st.integers(min_value=0, max_value=20),
        map_slots=st.integers(min_value=1, max_value=16),
        reduce_slots=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_bounds_bracket_simulation(
        self, num_maps, num_reduces, map_slots, reduce_slots, seed
    ):
        """Engine completion time of a capped solo job lies within the
        model's lower/upper bounds.

        Shuffle/reduce durations are held constant per profile: with
        heterogeneous per-task values the per-phase averages in the model
        are approximations (the replay's wave sizes differ from the
        recorded ones), so strict bracketing only holds for homogeneous
        phases; the general case is covered with slack below.
        """
        rng = np.random.default_rng(seed)
        profile = make_constant_profile(
            num_maps=num_maps,
            num_reduces=num_reduces,
            map_s=float(rng.uniform(1, 30)),
            first_shuffle_s=float(rng.uniform(2, 8)),
            typical_shuffle_s=float(rng.uniform(2, 8)),
            reduce_s=float(rng.uniform(0.5, 5)),
        )
        result = simulate(
            [TraceJob(profile, 0.0)],
            CappedFIFOScheduler(map_slots, reduce_slots),
            ClusterConfig(map_slots, reduce_slots),
            min_map_percent_completed=1.0,
        )
        actual = result.jobs[0].completion_time
        low = estimate_completion_time(profile, map_slots, reduce_slots, bound="lower")
        up = estimate_completion_time(profile, map_slots, reduce_slots, bound="upper")
        assert low - 1e-6 <= actual <= up + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(
        num_maps=st.integers(min_value=1, max_value=40),
        num_reduces=st.integers(min_value=0, max_value=20),
        map_slots=st.integers(min_value=1, max_value=16),
        reduce_slots=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_bounds_bracket_with_heterogeneity_slack(
        self, num_maps, num_reduces, map_slots, reduce_slots, seed
    ):
        """With heterogeneous durations, bracketing holds up to the
        per-phase duration spread (avg-vs-realized first wave effects)."""
        profile = make_random_profile(
            np.random.default_rng(seed), num_maps=num_maps, num_reduces=num_reduces
        )
        result = simulate(
            [TraceJob(profile, 0.0)],
            CappedFIFOScheduler(map_slots, reduce_slots),
            ClusterConfig(map_slots, reduce_slots),
            min_map_percent_completed=1.0,
        )
        actual = result.jobs[0].completion_time
        low = estimate_completion_time(profile, map_slots, reduce_slots, bound="lower")
        up = estimate_completion_time(profile, map_slots, reduce_slots, bound="upper")
        slack = 0.0
        for stats in (
            profile.first_shuffle_stats,
            profile.typical_shuffle_stats,
            profile.reduce_stats,
        ):
            if stats.count:
                slack += stats.max
        assert low - slack - 1e-6 <= actual <= up + slack + 1e-6

    def test_completion_time_needs_slots(self):
        profile = make_constant_profile()
        coeffs = model_coefficients(profile)
        with pytest.raises(ValueError):
            coeffs.completion_time(0, 4)


class TestMinSlots:
    def test_met_deadline_in_engine(self, cluster64):
        profile = make_constant_profile(num_maps=32, num_reduces=16, map_s=10.0)
        deadline = estimate_completion_time(profile, 8, 4, bound="upper") + 10
        m, r = min_slots_for_deadline(profile, deadline, cluster64, bound="upper")
        result = simulate(
            [TraceJob(profile, 0.0)],
            CappedFIFOScheduler(m, r),
            cluster64,
            min_map_percent_completed=1.0,
        )
        assert result.jobs[0].completion_time <= deadline + 1e-6

    def test_demand_is_minimal(self, cluster64):
        profile = make_constant_profile(num_maps=32, num_reduces=16, map_s=10.0)
        deadline = 150.0
        m, r = min_slots_for_deadline(profile, deadline, cluster64)
        # Shrinking either dimension must break the (model) deadline.
        coeffs = model_coefficients(profile)
        if m > 1:
            assert coeffs.completion_time(m - 1, max(r, 1)) > deadline
        if r > 1:
            assert coeffs.completion_time(max(m, 1), r - 1) > deadline

    def test_looser_deadline_needs_fewer_slots(self, cluster64):
        profile = make_constant_profile(num_maps=64, num_reduces=32, map_s=10.0)
        m_tight, r_tight = min_slots_for_deadline(profile, 120.0, cluster64)
        m_loose, r_loose = min_slots_for_deadline(profile, 1200.0, cluster64)
        assert m_loose <= m_tight
        assert r_loose <= r_tight
        assert m_loose + r_loose < m_tight + r_tight

    def test_infeasible_deadline_returns_max(self, cluster64):
        profile = make_constant_profile(num_maps=640, num_reduces=64, map_s=100.0)
        m, r = min_slots_for_deadline(profile, 1.0, cluster64)
        assert m == cluster64.map_slots
        assert r == min(cluster64.reduce_slots, 64)

    def test_map_only_job(self, cluster64):
        profile = make_constant_profile(num_maps=32, num_reduces=0, map_s=10.0)
        m, r = min_slots_for_deadline(profile, 90.0, cluster64)
        assert r == 0
        assert 1 <= m <= 32
        assert estimate_completion_time(profile, m, 1) <= 90.0

    def test_invalid_deadline_rejected(self, cluster64):
        profile = make_constant_profile()
        with pytest.raises(ValueError):
            min_slots_for_deadline(profile, 0.0, cluster64)
        with pytest.raises(ValueError):
            min_slots_for_deadline(profile, float("inf"), cluster64)

    def test_demand_never_exceeds_task_counts(self, cluster64):
        profile = make_constant_profile(num_maps=5, num_reduces=3, map_s=100.0)
        m, r = min_slots_for_deadline(profile, 10.0, cluster64)
        assert m <= 5
        assert r <= 3

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        deadline=st.floats(min_value=5.0, max_value=5000.0),
    )
    def test_property_feasible_demand_meets_model_deadline(self, seed, deadline):
        profile = make_random_profile(np.random.default_rng(seed), num_maps=30, num_reduces=12)
        cluster = ClusterConfig(64, 64)
        m, r = min_slots_for_deadline(profile, deadline, cluster)
        t = estimate_completion_time(profile, max(m, 1), max(r, 1))
        max_t = estimate_completion_time(profile, min(30, 64), min(12, 64))
        # Either the demand meets the deadline, or the deadline is
        # infeasible even at maximal allocation.
        assert t <= deadline + 1e-9 or max_t > deadline
