"""Tests of the engine's event protocol via the recorded event stream.

The paper (Section III-B) defines seven event types and the filler-based
reduce scheduling; with ``record_events=True`` the engine exposes the
processed stream, so the protocol itself is directly assertable.
"""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, EventType, SimulatorEngine, TraceJob
from repro.schedulers import FIFOScheduler

from conftest import make_constant_profile, make_random_profile


def run_logged(trace, map_slots=4, reduce_slots=4, **kw):
    engine = SimulatorEngine(
        ClusterConfig(map_slots, reduce_slots), FIFOScheduler(),
        record_events=True, **kw,
    )
    return engine.run(trace)


class TestEventProtocol:
    def test_exact_sequence_for_minimal_job(self):
        """1 map + 1 reduce: the canonical seven-type lifecycle."""
        profile = make_constant_profile(
            num_maps=1, num_reduces=1, map_s=10.0, first_shuffle_s=5.0, reduce_s=3.0
        )
        result = run_logged([TraceJob(profile, 0.0)])
        kinds = [e.event_type for e in result.event_log]
        assert kinds == [
            EventType.JOB_ARRIVAL,
            EventType.MAP_TASK_ARRIVAL,
            EventType.MAP_TASK_DEPARTURE,
            EventType.ALL_MAPS_FINISHED,
            EventType.REDUCE_TASK_ARRIVAL,
            EventType.REDUCE_TASK_DEPARTURE,
            EventType.JOB_DEPARTURE,
        ]

    def test_event_log_length_matches_counter(self):
        profile = make_constant_profile(num_maps=5, num_reduces=3)
        result = run_logged([TraceJob(profile, 0.0)])
        assert len(result.event_log) == result.events_processed

    def test_event_times_non_decreasing(self, rng):
        trace = [TraceJob(make_random_profile(rng, f"j{i}", 8, 4), float(i)) for i in range(3)]
        result = run_logged(trace)
        times = [e.time for e in result.event_log]
        assert times == sorted(times)

    def test_all_maps_finished_once_per_mapped_job(self, rng):
        trace = [TraceJob(make_random_profile(rng, f"j{i}", 6, 2), float(i)) for i in range(4)]
        result = run_logged(trace)
        per_job = {}
        for e in result.event_log:
            if e.event_type is EventType.ALL_MAPS_FINISHED:
                per_job[e.job_id] = per_job.get(e.job_id, 0) + 1
        assert per_job == {i: 1 for i in range(4)}

    def test_all_maps_precedes_first_wave_reduce_departures(self):
        profile = make_constant_profile(num_maps=8, num_reduces=2, map_s=10.0)
        result = run_logged([TraceJob(profile, 0.0)], map_slots=4, reduce_slots=2)
        log = result.event_log
        all_maps_at = next(
            i for i, e in enumerate(log) if e.event_type is EventType.ALL_MAPS_FINISHED
        )
        first_red_dep = next(
            i for i, e in enumerate(log) if e.event_type is EventType.REDUCE_TASK_DEPARTURE
        )
        assert all_maps_at < first_red_dep

    def test_departure_before_arrival_at_same_instant(self):
        """At one timestamp, departures process before arrivals, so a
        freed slot is reused at that very instant."""
        profile = make_constant_profile(num_maps=2, num_reduces=0, map_s=10.0)
        result = run_logged([TraceJob(profile, 0.0)], map_slots=1, reduce_slots=1)
        log = result.event_log
        # At t=10: first map departs, second map arrives.
        at_ten = [e.event_type for e in log if e.time == pytest.approx(10.0)]
        assert at_ten == [EventType.MAP_TASK_DEPARTURE, EventType.MAP_TASK_ARRIVAL]

    def test_task_indices_recorded(self):
        profile = make_constant_profile(num_maps=3, num_reduces=0)
        result = run_logged([TraceJob(profile, 0.0)])
        indices = [
            e.task_index for e in result.event_log
            if e.event_type is EventType.MAP_TASK_ARRIVAL
        ]
        assert sorted(indices) == [0, 1, 2]
        job_events = [
            e for e in result.event_log
            if e.event_type in (EventType.JOB_ARRIVAL, EventType.JOB_DEPARTURE)
        ]
        assert all(e.task_index is None for e in job_events)

    def test_recording_off_by_default(self):
        profile = make_constant_profile()
        engine = SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler())
        result = engine.run([TraceJob(profile, 0.0)])
        assert result.event_log == []

    def test_recording_does_not_change_outcomes(self, rng):
        trace = [TraceJob(make_random_profile(rng, f"j{i}", 10, 5), float(i)) for i in range(4)]
        logged = run_logged(trace)
        plain = SimulatorEngine(ClusterConfig(4, 4), FIFOScheduler()).run(trace)
        assert logged.completion_times() == plain.completion_times()
        assert logged.events_processed == plain.events_processed
