"""Tests for trace serialization and the sqlite trace database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TraceJob
from repro.trace.database import TraceDatabase
from repro.trace.schema import (
    SCHEMA_VERSION,
    load_trace,
    profile_from_dict,
    profile_to_dict,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)

from conftest import make_constant_profile, make_random_profile


class TestSchema:
    def test_profile_round_trip(self, random_profile):
        rebuilt = profile_from_dict(profile_to_dict(random_profile))
        assert rebuilt.name == random_profile.name
        assert rebuilt.num_maps == random_profile.num_maps
        assert np.array_equal(rebuilt.map_durations, random_profile.map_durations)
        assert np.array_equal(
            rebuilt.first_shuffle_durations, random_profile.first_shuffle_durations
        )

    def test_trace_round_trip(self, random_profile):
        trace = [TraceJob(random_profile, 0.0, 500.0), TraceJob(random_profile, 10.0)]
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert len(rebuilt) == 2
        assert rebuilt[0].deadline == 500.0
        assert rebuilt[1].deadline is None
        assert rebuilt[1].submit_time == 10.0

    def test_version_checked(self, random_profile):
        doc = trace_to_dict([TraceJob(random_profile, 0.0)])
        assert doc["schema_version"] == SCHEMA_VERSION
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            trace_from_dict(doc)

    def test_missing_field_raises(self):
        with pytest.raises(ValueError, match="missing required field"):
            profile_from_dict({"name": "x"})

    def test_file_round_trip(self, tmp_path, random_profile):
        trace = [TraceJob(random_profile, 5.0, 300.0)]
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded[0].submit_time == 5.0
        assert np.array_equal(loaded[0].profile.map_durations, random_profile.map_durations)


class TestTraceDatabase:
    def test_profile_store_and_get(self):
        with TraceDatabase() as db:
            profile = make_constant_profile(name="WordCount")
            db.add_profile(profile, execution=0)
            loaded = db.get_profile("WordCount", 0)
            assert loaded.num_maps == profile.num_maps
            assert np.array_equal(loaded.map_durations, profile.map_durations)

    def test_multiple_executions(self, rng):
        with TraceDatabase() as db:
            for e in range(3):
                db.add_profile(make_random_profile(rng, name="app"), execution=e)
            assert db.executions_of("app") == [0, 1, 2]

    def test_duplicate_execution_rejected(self):
        with TraceDatabase() as db:
            db.add_profile(make_constant_profile(name="a"), execution=0)
            with pytest.raises(ValueError, match="already stored"):
                db.add_profile(make_constant_profile(name="a"), execution=0)

    def test_missing_profile_raises(self):
        with TraceDatabase() as db:
            with pytest.raises(KeyError):
                db.get_profile("nothing")

    def test_applications_listing(self, rng):
        with TraceDatabase() as db:
            db.add_profile(make_random_profile(rng, name="b"))
            db.add_profile(make_random_profile(rng, name="a"))
            assert db.applications() == ["a", "b"]

    def test_trace_round_trip(self, rng):
        with TraceDatabase() as db:
            profile = make_random_profile(rng, name="app")
            trace = [TraceJob(profile, 0.0, 100.0), TraceJob(profile, 7.0)]
            db.save_trace("night-batch", trace)
            loaded = db.load_trace("night-batch")
            assert len(loaded) == 2
            assert loaded[0].deadline == 100.0
            assert loaded[1].submit_time == 7.0
            assert np.array_equal(loaded[0].profile.map_durations, profile.map_durations)

    def test_identical_profiles_deduplicated(self, rng):
        with TraceDatabase() as db:
            profile = make_random_profile(rng, name="app")
            db.save_trace("t", [TraceJob(profile, 0.0), TraceJob(profile, 1.0)])
            assert db.executions_of("app") == [0]

    def test_duplicate_trace_name_rejected(self, rng):
        with TraceDatabase() as db:
            profile = make_random_profile(rng)
            db.save_trace("t", [TraceJob(profile, 0.0)])
            with pytest.raises(ValueError, match="already stored"):
                db.save_trace("t", [TraceJob(profile, 0.0)])

    def test_delete_trace(self, rng):
        with TraceDatabase() as db:
            profile = make_random_profile(rng)
            db.save_trace("t", [TraceJob(profile, 0.0)])
            db.delete_trace("t")
            assert db.trace_names() == []
            with pytest.raises(KeyError):
                db.load_trace("t")
            with pytest.raises(KeyError):
                db.delete_trace("t")

    def test_persistent_file(self, tmp_path, rng):
        path = tmp_path / "traces.db"
        profile = make_random_profile(rng, name="app")
        with TraceDatabase(path) as db:
            db.save_trace("t", [TraceJob(profile, 3.0)])
        with TraceDatabase(path) as db:
            loaded = db.load_trace("t")
            assert loaded[0].submit_time == 3.0
