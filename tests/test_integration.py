"""End-to-end integration tests spanning the full SimMR pipeline.

These follow the paper's Figure 4 data flow: cluster execution ->
JobTracker logs -> MRProfiler -> Trace Database -> Simulator Engine ->
output metrics, plus the synthetic branch through Synthetic TraceGen.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, TraceJob, simulate
from repro.hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from repro.mrprofiler.profiler import profile_history
from repro.mumak.rumen import extract_rumen_trace, rumen_to_trace
from repro.mumak.simulator import MumakSimulator
from repro.schedulers import FIFOScheduler, MaxEDFScheduler, MinEDFScheduler
from repro.trace.database import TraceDatabase
from repro.trace.arrivals import ExponentialArrivals
from repro.trace.deadlines import DeadlineFactorPolicy
from repro.trace.scaling import scale_profile
from repro.trace.schema import load_trace, save_trace
from repro.trace.synthetic import SyntheticTraceGen
from repro.workloads.apps import make_app_specs

from conftest import make_random_profile


class TestValidationPipeline:
    """The paper's core loop: emulate -> log -> profile -> replay."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        rng = np.random.default_rng(11)
        specs = make_app_specs()
        trace = [
            TraceJob(specs["Sort"].make_profile(rng), 0.0),
            TraceJob(specs["TFIDF"].make_profile(rng), 200.0),
        ]
        cfg = EmulatorConfig(seed=2)
        actual = HadoopClusterEmulator(cfg, FIFOScheduler()).run(trace)
        profiled = profile_history(actual.history_text())
        return actual, profiled, cfg.aggregate_cluster()

    def test_replay_within_five_percent(self, pipeline):
        """The paper's headline: replayed completion times within ~5%."""
        actual, profiled, cluster = pipeline
        replay = [TraceJob(pj.profile, pj.submit_time) for pj in profiled]
        sim = simulate(replay, FIFOScheduler(), cluster)
        for i, pj in enumerate(profiled):
            err = abs(sim.jobs[i].duration - pj.duration) / pj.duration
            assert err < 0.06, f"{pj.profile.name}: {err:.1%}"

    def test_mumak_underestimates_same_trace(self, pipeline):
        actual, profiled, cluster = pipeline
        history_trace = rumen_to_trace(
            extract_rumen_trace(actual.history_text())
        )
        mumak = MumakSimulator(num_nodes=cluster.map_slots).run(history_trace)
        for i, pj in enumerate(profiled):
            assert mumak.jobs[i].duration < pj.duration

    def test_trace_survives_database_round_trip(self, pipeline):
        actual, profiled, cluster = pipeline
        replay = [TraceJob(pj.profile, pj.submit_time) for pj in profiled]
        with TraceDatabase() as db:
            db.save_trace("validation", replay)
            loaded = db.load_trace("validation")
        direct = simulate(replay, FIFOScheduler(), cluster)
        via_db = simulate(loaded, FIFOScheduler(), cluster)
        assert direct.completion_times() == via_db.completion_times()

    def test_trace_survives_json_round_trip(self, pipeline, tmp_path):
        actual, profiled, cluster = pipeline
        replay = [TraceJob(pj.profile, pj.submit_time) for pj in profiled]
        path = tmp_path / "trace.json"
        save_trace(replay, path)
        loaded = load_trace(path)
        direct = simulate(replay, FIFOScheduler(), cluster)
        via_json = simulate(loaded, FIFOScheduler(), cluster)
        assert direct.completion_times() == via_json.completion_times()


class TestSyntheticPipeline:
    def test_generate_with_deadlines_and_compare_schedulers(self):
        cluster = ClusterConfig(16, 16)
        gen = SyntheticTraceGen(
            list(make_app_specs().values())[:3],
            ExponentialArrivals(50.0),
            deadline_policy=DeadlineFactorPolicy(2.0, cluster),
            seed=5,
        )
        trace = gen.generate(8)
        results = {
            s.name: simulate(trace, s, cluster, record_tasks=False)
            for s in (FIFOScheduler(), MaxEDFScheduler(), MinEDFScheduler())
        }
        # All runs complete all jobs; EDF policies should not be worse
        # than deadline-blind FIFO on the deadline metric.
        for result in results.values():
            assert len(result.completion_times()) == 8
        assert (
            min(results["MaxEDF"].relative_deadline_exceeded(),
                results["MinEDF"].relative_deadline_exceeded())
            <= results["FIFO"].relative_deadline_exceeded() + 1e-9
        )


class TestScalingPipeline:
    def test_scaled_trace_replays_proportionally(self, rng):
        """Future-work feature: a 3x-scaled job takes ~3x as long when
        the cluster is the bottleneck."""
        profile = make_random_profile(rng, num_maps=64, num_reduces=16)
        cluster = ClusterConfig(8, 8)
        base = simulate([TraceJob(profile, 0.0)], FIFOScheduler(), cluster)
        scaled = scale_profile(profile, 3.0, seed=1)
        big = simulate([TraceJob(scaled, 0.0)], FIFOScheduler(), cluster)
        ratio = big.makespan / base.makespan
        assert 2.0 < ratio < 4.0

    def test_scaled_profile_replayable_after_serialization(self, rng, tmp_path):
        profile = scale_profile(make_random_profile(rng), 2.0)
        path = tmp_path / "scaled.json"
        save_trace([TraceJob(profile, 0.0)], path)
        result = simulate(load_trace(path), FIFOScheduler(), ClusterConfig(8, 8))
        assert result.jobs[0].completion_time is not None
