"""Service and `simmr check` integration for policy trees.

The satellite contracts under test:

* the service accepts a ``policy`` scheduler spec, canonicalizes the
  submitted tree, and replays it event-digest-identical to a local run;
* 4xx rejections of BOTH ``policy`` and ``inline-certified`` schedulers
  carry *structured* findings (rule id + path into the submission) in
  the response body, not just a flattened reason string;
* ``simmr check --format json`` merges POL00x policy findings into the
  single tagged findings list alongside lint and sanitizer entries;
* ``simmr evolve`` is wired end to end through the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import ClusterConfig
from repro.parallel import SchedulerSpec, SimTask, simulate_many
from repro.policy import canonical_policy_json, example_policy, parse_policy
from repro.service import (
    ProtocolError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SimulationServer,
    parse_request,
    request_document,
)
from repro.trace.arrivals import ExponentialArrivals
from repro.trace.synthetic import SyntheticTraceGen
from repro.workloads.apps import make_app_specs


@pytest.fixture(scope="module")
def trace():
    gen = SyntheticTraceGen(
        list(make_app_specs().values()), ExponentialArrivals(50.0), seed=3
    )
    return gen.generate(4)


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(
        port=0,
        workers=2,
        queue_size=8,
        cache=tmp_path / "service.sqlite",
        trace_root=tmp_path,
        request_timeout=60.0,
    )
    with SimulationServer(config).start() as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=60.0)


def policy_scheduler_doc(tree, name="demo") -> dict:
    return {"kind": "policy", "name": name, "kwargs": {"tree": tree}}


BAD_TREE = {"version": 1, "name": "demo", "tree": {"pick": "lifo"}}

_INLINE_WALLCLOCK = """\
import time


class WallclockScheduler:
    name = "Wallclock"

    def choose_next_map_task(self, job_queue):
        time.time()
        return job_queue[0] if job_queue else None

    def choose_next_reduce_task(self, job_queue):
        return job_queue[0] if job_queue else None
"""


class TestPolicyProtocol:
    def test_accepts_and_canonicalizes_tree(self, trace):
        doc = request_document(trace=trace)
        # submit the tree as indented text: the accepted spec must carry
        # the canonical form so equal policies share one cache identity
        tree = json.dumps(example_policy("edf-tree"), indent=4)
        doc["scheduler"] = policy_scheduler_doc(tree, name="edf-tree")
        request = parse_request(doc)
        assert request.scheduler.kind == "policy"
        expected = canonical_policy_json(parse_policy(example_policy("edf-tree")))
        assert dict(request.scheduler.kwargs)["tree"] == expected

    def test_accepts_tree_as_object(self, trace):
        doc = request_document(trace=trace)
        doc["scheduler"] = policy_scheduler_doc(
            example_policy("deadline-aware"), name="deadline-aware"
        )
        request = parse_request(doc)
        assert request.scheduler.kind == "policy"

    def test_rejection_is_422_with_structured_findings(self, trace):
        doc = request_document(trace=trace)
        doc["scheduler"] = policy_scheduler_doc(BAD_TREE)
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(doc)
        assert excinfo.value.status == 422
        assert excinfo.value.findings, "rejection must carry findings"
        (finding,) = excinfo.value.findings
        assert finding["rule_id"] == "POL002"
        assert finding["path"] == "policy:demo#/tree/pick"
        assert "lifo" in finding["message"]
        assert "POL002" in str(excinfo.value)

    def test_missing_tree_kwarg_is_400(self, trace):
        doc = request_document(trace=trace)
        doc["scheduler"] = {"kind": "policy", "name": "demo", "kwargs": {}}
        with pytest.raises(ProtocolError, match="kwargs.tree"):
            parse_request(doc)

    def test_oversized_tree_is_413(self, trace):
        from repro.policy import MAX_POLICY_TEXT

        doc = request_document(trace=trace)
        bloated = json.dumps(example_policy("fifo-tree")) + " " * MAX_POLICY_TEXT
        doc["scheduler"] = policy_scheduler_doc(bloated)
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(doc)
        assert excinfo.value.status == 413

    def test_inline_rejection_carries_cert001_finding(self, trace):
        doc = request_document(trace=trace)
        doc["scheduler"] = {
            "kind": "inline-certified",
            "name": "WallclockScheduler",
            "kwargs": {"source": _INLINE_WALLCLOCK},
        }
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(doc)
        assert excinfo.value.status == 422
        (finding,) = excinfo.value.findings
        assert finding["rule_id"] == "CERT001"
        assert finding["path"] == "<inline:WallclockScheduler>"
        assert finding["line"] > 0  # the witness line into the submission
        assert "choose_next_map_task" in finding["hint"]  # the witness chain
        assert "time.time" in finding["message"]  # the effectful sink


class TestPolicyServiceEndToEnd:
    def test_replay_digest_identical_to_local(self, client, trace):
        spec = SchedulerSpec(
            kind="policy",
            name="edf-tree",
            kwargs=(
                ("tree", canonical_policy_json(
                    parse_policy(example_policy("edf-tree"))
                )),
            ),
        )
        reply = client.replay(trace, scheduler=spec)
        task = SimTask(
            trace_id="t", scheduler=spec, cluster=ClusterConfig(64, 64),
            slowstart=0.05,
        )
        [outcome] = simulate_many({"t": trace}, [task], cache=None)
        assert reply.event_digest == outcome.result.event_digest

    def test_policy_rejection_body_has_findings(self, client, trace):
        doc = request_document(trace=trace)
        doc["scheduler"] = policy_scheduler_doc(BAD_TREE)
        status, _, payload = client._request("/simulate", doc)
        assert status == 422
        body = json.loads(payload.decode())
        assert "policy rejected" in body["error"]
        assert body["findings"][0]["rule_id"] == "POL002"
        assert body["findings"][0]["path"] == "policy:demo#/tree/pick"

    def test_inline_rejection_body_has_findings(self, client, trace):
        doc = request_document(trace=trace)
        doc["scheduler"] = {
            "kind": "inline-certified",
            "name": "WallclockScheduler",
            "kwargs": {"source": _INLINE_WALLCLOCK},
        }
        status, _, payload = client._request("/simulate", doc)
        assert status == 422
        body = json.loads(payload.decode())
        assert body["findings"][0]["rule_id"] == "CERT001"

    def test_client_surfaces_rejection(self, client, trace):
        doc_spec = SchedulerSpec(
            kind="policy", name="demo",
            kwargs=(("tree", json.dumps(BAD_TREE)),),
        )
        with pytest.raises(ServiceError) as excinfo:
            client.replay(trace, scheduler=doc_spec)
        assert excinfo.value.status == 422
        assert "POL002" in excinfo.value.message


# --------------------------------------------------------------------------- #
# simmr check / simmr evolve CLI integration
# --------------------------------------------------------------------------- #

class TestCheckMergesPolicyFindings:
    def test_json_report_tags_policy_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(BAD_TREE))
        code = main([
            "check", "--static-only", "--format", "json",
            "--policy", str(bad),
            str(Path(__file__).parent.parent / "src/repro/policy/examples.py"),
        ])
        out = capsys.readouterr().out
        report = json.loads(out)
        assert code == 1
        assert report["ok"] is False
        policy_findings = [
            f for f in report["findings"] if f["source"] == "policy"
        ]
        assert policy_findings, "policy findings must be in the merged list"
        assert policy_findings[0]["rule_id"] == "POL002"
        assert policy_findings[0]["policy"] == str(bad)
        # the example trees are certified in the same report
        names = {p["policy"] for p in report["policy"]}
        assert {"fifo-tree", "edf-tree", "deadline-aware"} <= names

    def test_no_policy_skips_the_half(self, capsys):
        code = main([
            "check", "--static-only", "--no-policy", "--format", "json",
            str(Path(__file__).parent.parent / "src/repro/policy/examples.py"),
        ])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["policy"] == []


class TestEvolveCli:
    ARGS = [
        "evolve", "--seed", "7", "--population", "8", "--generations", "2",
        "--jobs", "10", "--traces", "1", "--mean-interarrival", "20",
        "--deadline-factor", "1.3", "--map-slots", "16", "--reduce-slots", "16",
    ]

    def test_json_output_and_winner_file(self, tmp_path, capsys):
        out_file = tmp_path / "winner.json"
        code = main(self.ARGS + ["--format", "json", "--output", str(out_file)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["beats_baselines"] is True
        assert json.loads(out_file.read_text()) == payload["winner"]

    def test_text_output_reports_baselines(self, capsys):
        code = main(self.ARGS + ["--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "winner: edf-sjf" in out
        assert "vs fifo" in out and "vs maxedf" in out
        assert "beats baselines: yes" in out
