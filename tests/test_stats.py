"""Tests for the statistics toolkit: KL divergence, CDFs, fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.cdf import EmpiricalCDF, ks_distance
from repro.stats.fitting import fit_best, fit_candidates, fit_lognormal
from repro.stats.kl import duration_histogram, histogram_kl, kl_divergence, symmetric_kl


class TestKLDivergence:
    def test_identical_distributions_zero(self):
        p = [0.25, 0.25, 0.5]
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        # D([1,0] || [0.5,0.5]) = log 2
        assert kl_divergence([1.0, 0.0], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_disjoint_support_infinite(self):
        assert kl_divergence([1.0, 0.0], [0.0, 1.0]) == float("inf")

    def test_normalizes_inputs(self):
        assert kl_divergence([2.0, 2.0], [5.0, 5.0]) == pytest.approx(0.0)

    def test_asymmetric(self):
        p, q = [0.9, 0.1], [0.5, 0.5]
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_symmetric_version_is_symmetric(self):
        p, q = [0.9, 0.1], [0.5, 0.5]
        assert symmetric_kl(p, q) == pytest.approx(symmetric_kl(q, p))

    def test_validation(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5], [0.5, 0.5])
        with pytest.raises(ValueError):
            kl_divergence([-0.1, 1.1], [0.5, 0.5])
        with pytest.raises(ValueError):
            kl_divergence([0.0, 0.0], [0.5, 0.5])

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=20),
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_non_negative(self, p, q):
        n = min(len(p), len(q))
        assert kl_divergence(p[:n], q[:n]) >= -1e-9


class TestHistogramKL:
    def test_same_sample_is_zero(self, rng):
        sample = rng.uniform(0, 10, 500)
        assert histogram_kl(sample, sample) == pytest.approx(0.0)

    def test_same_distribution_small(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(20, 3, 2000), rng.normal(20, 3, 2000)
        assert histogram_kl(a, b) < 0.5

    def test_different_distributions_large(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(10, 1, 2000), rng.normal(100, 5, 2000)
        assert histogram_kl(a, b) > 5.0

    def test_disjoint_bounded_by_epsilon(self):
        """Smoothing keeps divergence finite, near log(1/epsilon) ~ 13.8 —
        the scale of the paper's cross-application values."""
        a = np.full(100, 1.0)
        b = np.full(100, 100.0)
        kl = histogram_kl(a, b)
        assert 5.0 < kl < 20.0

    def test_epsilon_validation(self, rng):
        with pytest.raises(ValueError):
            histogram_kl([1.0], [2.0], epsilon=0.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            histogram_kl([], [1.0])

    def test_duration_histogram_shared_edges(self, rng):
        edges, (ha, hb) = duration_histogram([rng.uniform(0, 10, 100), rng.uniform(5, 15, 100)])
        assert edges[0] <= 0.5
        assert edges[-1] >= 14.0
        assert ha.sum() == 100 and hb.sum() == 100

    def test_explicit_bins(self, rng):
        edges, _ = duration_histogram([rng.uniform(0, 10, 50)], bins=7)
        assert len(edges) == 8


class TestEmpiricalCDF:
    def test_values(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0

    def test_vectorized(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        out = cdf(np.array([0.0, 1.5, 3.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_quantiles(self):
        cdf = EmpiricalCDF(list(range(1, 101)))
        assert cdf.quantile(0.5) == 50
        assert cdf.percentile(95) == 95
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 100

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0]).quantile(1.5)

    def test_series_is_figure3_format(self):
        x, pct = EmpiricalCDF([3.0, 1.0, 2.0]).series()
        assert np.allclose(x, [1.0, 2.0, 3.0])
        assert np.allclose(pct, [100 / 3, 200 / 3, 100.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_ks_distance_identical_zero(self):
        sample = [1.0, 2.0, 3.0]
        assert ks_distance(sample, sample) == 0.0

    def test_ks_distance_disjoint_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 11.0]) == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_cdf_monotone(self, values):
        cdf = EmpiricalCDF(values)
        grid = np.linspace(min(values) - 1, max(values) + 1, 20)
        out = cdf(grid)
        assert np.all(np.diff(out) >= -1e-12)
        assert out[-1] == 1.0


class TestFitting:
    def test_lognormal_fit_recovers_parameters(self):
        rng = np.random.default_rng(0)
        mu, sigma = 2.5, 0.8
        sample = rng.lognormal(mu, sigma, 20000)
        mu_hat, sigma_hat, ks = fit_lognormal(sample)
        assert mu_hat == pytest.approx(mu, abs=0.05)
        assert sigma_hat == pytest.approx(sigma, abs=0.05)
        assert ks < 0.02

    def test_fit_best_identifies_lognormal(self):
        """The paper's StatAssist workflow: LogNormal wins on Facebook-like
        task durations."""
        rng = np.random.default_rng(1)
        sample = rng.lognormal(9.9511, 1.6764, 5000)
        best = fit_best(sample, families=("lognorm", "expon", "norm", "gamma"))
        assert best.family == "lognorm"

    def test_fit_best_identifies_exponential(self):
        rng = np.random.default_rng(2)
        sample = rng.exponential(5.0, 5000)
        best = fit_best(sample, families=("lognorm", "expon", "norm"))
        assert best.family == "expon"

    def test_candidates_sorted_by_ks(self):
        rng = np.random.default_rng(3)
        results = fit_candidates(rng.normal(50, 5, 1000), families=("norm", "expon"))
        ks_values = [r.ks_statistic for r in results]
        assert ks_values == sorted(ks_values)

    def test_frozen_distribution_sampling(self):
        rng = np.random.default_rng(4)
        result = fit_best(rng.normal(10, 2, 500), families=("norm",))
        frozen = result.frozen()
        assert frozen.mean() == pytest.approx(10, abs=0.5)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scipy"):
            fit_candidates([1.0, 2.0, 3.0], families=("not_a_dist",))

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_candidates([1.0])

    def test_lognormal_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            fit_lognormal([0.0, 1.0, 2.0])
