"""Tests for speculative execution in the Hadoop emulator.

The paper: "We disabled speculation as it did not lead to any
significant improvements."  The emulator implements Hadoop's backup-task
mechanism so that claim is checkable: with the testbed's mild noise
speculation barely matters; with heavy stragglers it pays off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TraceJob
from repro.hadoop import EmulatorConfig, HadoopClusterEmulator
from repro.mrprofiler import profile_history, parse_history

from conftest import make_constant_profile


def run_wordcount(speculative: bool, node_speed_sigma: float, seed: int = 3):
    profile = make_constant_profile(num_maps=16, num_reduces=0, map_s=60.0)
    cfg = EmulatorConfig(
        num_nodes=16,
        heartbeat_interval=1.0,
        node_speed_sigma=node_speed_sigma,
        task_jitter_sigma=0.05,
        speculative_execution=speculative,
        seed=seed,
    )
    return HadoopClusterEmulator(cfg).run([TraceJob(profile, 0.0)])


class TestSpeculationMechanics:
    def test_backups_launched_for_stragglers(self):
        result = run_wordcount(speculative=True, node_speed_sigma=0.4)
        assert any(t.speculative for t in result.tasks)

    def test_no_backups_when_disabled(self):
        result = run_wordcount(speculative=False, node_speed_sigma=0.4)
        assert not any(t.speculative for t in result.tasks)

    def test_exactly_one_winner_per_task(self):
        result = run_wordcount(speculative=True, node_speed_sigma=0.4)
        winners: dict[int, int] = {}
        for t in result.tasks:
            if t.kind == "map" and not t.killed:
                winners[t.index] = winners.get(t.index, 0) + 1
        assert all(count == 1 for count in winners.values())
        assert len(winners) == 16

    def test_loser_attempts_killed_at_win_time(self):
        result = run_wordcount(speculative=True, node_speed_sigma=0.4)
        by_index: dict[int, list] = {}
        for t in result.tasks:
            if t.kind == "map":
                by_index.setdefault(t.index, []).append(t)
        for attempts in by_index.values():
            if len(attempts) > 1:
                winner = [t for t in attempts if not t.killed][0]
                for loser in attempts:
                    if loser.killed:
                        assert loser.end == pytest.approx(winner.end)

    def test_backup_runs_on_different_node(self):
        result = run_wordcount(speculative=True, node_speed_sigma=0.4)
        by_index: dict[int, list] = {}
        for t in result.tasks:
            if t.kind == "map":
                by_index.setdefault(t.index, []).append(t)
        for attempts in by_index.values():
            nodes = [t.node_id for t in attempts]
            assert len(set(nodes)) == len(nodes)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmulatorConfig(speculation_slowness=1.0)
        with pytest.raises(ValueError):
            EmulatorConfig(speculation_min_completed=0)


class TestSpeculationOutcomes:
    def test_heavy_stragglers_speed_up(self):
        plain = run_wordcount(speculative=False, node_speed_sigma=0.4)
        spec = run_wordcount(speculative=True, node_speed_sigma=0.4)
        assert spec.jobs[0].duration < 0.8 * plain.jobs[0].duration

    def test_paper_testbed_noise_changes_little(self):
        """With the testbed's mild heterogeneity, speculation 'did not
        lead to any significant improvements' — within a few percent."""
        durations = []
        for speculative in (False, True):
            total = 0.0
            for seed in range(3):
                total += run_wordcount(
                    speculative=speculative, node_speed_sigma=0.05, seed=seed
                ).jobs[0].duration
            durations.append(total)
        plain, spec = durations
        assert abs(plain - spec) / plain < 0.05


class TestSpeculationInLogs:
    def test_killed_attempts_logged_and_ignored_by_profiler(self):
        result = run_wordcount(speculative=True, node_speed_sigma=0.4)
        history = result.history_text()
        assert 'TASK_STATUS="KILLED"' in history
        parsed = parse_history(history)[0]
        # All attempts visible Rumen-style; winners only in the profile view.
        assert len(parsed.all_map_attempts) > 16
        assert len(parsed.map_attempts) == 16
        profile = profile_history(history)[0].profile
        assert profile.num_maps == 16
        assert np.all(profile.map_durations > 0)

    def test_winning_attempt_defines_duration(self):
        result = run_wordcount(speculative=True, node_speed_sigma=0.4)
        parsed = parse_history(result.history_text())[0]
        for index, att in parsed.map_attempts.items():
            assert att.status == "SUCCESS"
