"""Tests for MRProfiler: history-log parsing and profile extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TraceJob
from repro.hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from repro.hadoop.history import BASE_EPOCH_MS, JobHistoryWriter
from repro.mrprofiler.parser import parse_history
from repro.mrprofiler.profiler import build_profile, profile_history, trace_from_history

from conftest import make_constant_profile


def synthetic_log() -> str:
    """Hand-built two-job history log with known timings."""
    w = JobHistoryWriter(0, "WordCount")
    w.job_submitted(0.0)
    w.job_launched(0.5, 2, 2)
    w.map_started(0, 1.0, "node000")
    w.map_started(1, 1.0, "node001")
    # Reduce 0 starts during the map stage (first wave).
    w.reduce_started(0, 6.0, "node002")
    w.map_finished(0, 11.0, "node000")
    w.map_finished(1, 13.0, "node001")  # map stage ends at 13
    # First-wave shuffle finishes 4s after the map stage -> non-overlap 4.
    w.reduce_finished(0, 17.0, 17.0, 20.0, "node002")
    # Reduce 1 starts after the map stage (typical wave): shuffle 3s.
    w.reduce_started(1, 20.0, "node002")
    w.reduce_finished(1, 23.0, 23.0, 26.5, "node002")
    w.job_finished(26.5, 2, 2)

    v = JobHistoryWriter(1, "Sort")
    v.job_submitted(30.0)
    v.job_launched(30.5, 1, 0)
    v.map_started(0, 31.0, "node003")
    v.map_finished(0, 42.0, "node003")
    v.job_finished(42.0, 1, 0)
    return JobHistoryWriter.combine([w, v])


class TestParser:
    def test_parses_jobs_in_order(self):
        jobs = parse_history(synthetic_log())
        assert [j.name for j in jobs] == ["WordCount", "Sort"]
        assert jobs[0].total_maps == 2
        assert jobs[0].total_reduces == 2
        assert jobs[0].status == "SUCCESS"

    def test_timestamps_in_epoch_ms(self):
        job = parse_history(synthetic_log())[0]
        assert job.submit_ms == BASE_EPOCH_MS
        assert job.finish_ms == BASE_EPOCH_MS + 26500

    def test_attempt_merging(self):
        """START and FINISH lines of one attempt merge into one record."""
        job = parse_history(synthetic_log())[0]
        att = job.map_attempts[0]
        assert att.start_ms == BASE_EPOCH_MS + 1000
        assert att.finish_ms == BASE_EPOCH_MS + 11000
        assert att.hostname == "node000"
        assert att.duration_s == pytest.approx(10.0)

    def test_reduce_phase_timestamps(self):
        job = parse_history(synthetic_log())[0]
        att = job.reduce_attempts[0]
        assert att.shuffle_finished_ms == BASE_EPOCH_MS + 17000
        assert att.sort_finished_ms == BASE_EPOCH_MS + 17000
        assert att.complete

    def test_map_stage_end(self):
        job = parse_history(synthetic_log())[0]
        assert job.map_stage_end_ms == BASE_EPOCH_MS + 13000

    def test_duration(self):
        job = parse_history(synthetic_log())[0]
        assert job.duration_s == pytest.approx(26.5)

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError, match="no job id"):
            parse_history('Job USER="nobody"')

    def test_blank_lines_ignored(self):
        jobs = parse_history("\n\n" + synthetic_log() + "\n\n")
        assert len(jobs) == 2

    def test_accepts_iterable_of_lines(self):
        jobs = parse_history(synthetic_log().splitlines())
        assert len(jobs) == 2

    def test_unknown_entities_skipped(self):
        text = synthetic_log() + 'Meta VERSION="1"  JOBID="job_201011010000_0001"\n'
        assert len(parse_history(text)) == 2


class TestBuildProfile:
    def test_durations(self):
        job = parse_history(synthetic_log())[0]
        profile = build_profile(job)
        assert profile.num_maps == 2
        assert profile.num_reduces == 2
        assert np.allclose(profile.map_durations, [10.0, 12.0])
        assert np.allclose(profile.reduce_durations, [3.0, 3.5])

    def test_first_vs_typical_shuffle_split(self):
        """First-wave reduce keeps only the post-map-stage part (4s);
        the later wave records its full shuffle (3s) as typical."""
        job = parse_history(synthetic_log())[0]
        profile = build_profile(job)
        assert np.allclose(profile.first_shuffle_durations, [4.0])
        assert np.allclose(profile.typical_shuffle_durations, [3.0])

    def test_map_only_job(self):
        job = parse_history(synthetic_log())[1]
        profile = build_profile(job)
        assert profile.num_reduces == 0
        assert np.allclose(profile.map_durations, [11.0])

    def test_incomplete_attempt_raises(self):
        w = JobHistoryWriter(0, "X")
        w.job_submitted(0.0)
        w.map_started(0, 1.0, "node000")  # never finished
        with pytest.raises(ValueError, match="lacks start/finish"):
            build_profile(parse_history(w.render())[0])


class TestProfileHistory:
    def test_submit_times_normalized(self):
        profiled = profile_history(synthetic_log())
        assert profiled[0].submit_time == 0.0
        assert profiled[1].submit_time == pytest.approx(30.0)

    def test_durations_recorded(self):
        profiled = profile_history(synthetic_log())
        assert profiled[0].duration == pytest.approx(26.5)
        assert profiled[1].duration == pytest.approx(12.0)

    def test_trace_from_history(self):
        trace = trace_from_history(synthetic_log())
        assert len(trace) == 2
        assert isinstance(trace[0], TraceJob)
        assert trace[0].profile.name == "WordCount"

    def test_empty_log(self):
        assert profile_history("") == []


class TestRoundTrip:
    def test_emulator_log_profiles_to_original_durations(self):
        """With zero noise, profiling the emulator's log recovers the
        original per-task durations exactly (modulo ms rounding)."""
        cfg = EmulatorConfig(
            num_nodes=4, node_speed_sigma=0.0, task_jitter_sigma=0.0, seed=0
        )
        profile = make_constant_profile(num_maps=8, num_reduces=2, map_s=10.0,
                                        first_shuffle_s=5.0, reduce_s=3.0)
        result = HadoopClusterEmulator(cfg).run([TraceJob(profile, 0.0)])
        recovered = profile_history(result.history_text())[0].profile
        assert np.allclose(recovered.map_durations, 10.0, atol=2e-3)
        assert np.allclose(recovered.reduce_durations, 3.0, atol=2e-3)
        assert np.allclose(recovered.first_shuffle_durations, 5.0, atol=2e-3)
