"""Digest-identity and envelope tests for the columnar kernel.

The columnar kernel (``repro.core.kernel``) is gated by one contract:
for every workload it claims, it must produce the **bit-identical**
event stream the object engine produces — same BLAKE2b digest, same
event count, same task records, same results.  These tests assert that
contract across the full scheduler zoo, the slow-start range, slot
caps, degenerate job shapes, live preemption (segmented replay mode),
columnar dynamic schedulers (Fair and compiled policy trees), and the
simsan dual-run divergence check, and pin the fallback envelope for
everything the kernel does not claim.  See ``docs/engine-internals.md``
for the design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, JobProfile, JobState, TraceJob, simulate
from repro.core.kernel import ColumnarEngine
from repro.experiments.scheduler_zoo import ZOO_POLICIES
from repro.sanitize.digest import DigestRecorder, EventDigest, dual_run
from repro.sanitize.sanitizer import Sanitizer
from repro.schedulers import (
    CappedFIFOScheduler,
    FIFOScheduler,
    MaxEDFScheduler,
    MinEDFScheduler,
)

from conftest import make_constant_profile, make_random_profile

#: Zoo policies the kernel runs natively in pass mode (static priority,
#: no caps set by the engine itself — MinEDF sets per-job caps, still
#: static).
STATIC_POLICIES = ("FIFO", "MaxEDF", "MinEDF")
#: Dynamic zoo policies that carry the ColumnarSchedulerMixin contract —
#: the kernel runs them in segmented-replay mode.
COLUMNAR_DYNAMIC_POLICIES = ("Fair",)
#: Dynamic zoo policies without the contract: still fall back.
FALLBACK_POLICIES = tuple(
    p for p in ZOO_POLICIES
    if p not in STATIC_POLICIES and p not in COLUMNAR_DYNAMIC_POLICIES
)
DYNAMIC_POLICIES = tuple(p for p in ZOO_POLICIES if p not in STATIC_POLICIES)


def make_zoo_trace(seed: int = 7, n: int = 24) -> list[TraceJob]:
    """A mixed trace: varied shapes, deadlines, map-only and reduce-only."""
    rng = np.random.default_rng(seed)
    trace = []
    for i in range(n):
        num_maps = int(rng.integers(0, 20))
        num_reduces = int(rng.integers(0, 8))
        if num_maps == 0 and num_reduces == 0:
            num_maps = 1
        profile = JobProfile(
            name=rng.choice(["WikiTrends", "Bayes", "Sort", "Grep"]),
            num_maps=num_maps,
            num_reduces=num_reduces,
            map_durations=rng.uniform(1, 25, max(num_maps, 1)),
            first_shuffle_durations=rng.uniform(1, 6, max(num_reduces, 1)),
            typical_shuffle_durations=rng.uniform(1, 5, max(num_reduces, 1)),
            reduce_durations=rng.uniform(0.5, 8, max(num_reduces, 1)),
        )
        submit = float(rng.uniform(0, 100))
        deadline = submit + float(rng.uniform(40, 500)) if rng.random() < 0.6 else None
        trace.append(TraceJob(profile, submit, deadline=deadline))
    return trace


def run_both(trace, scheduler_factory, cluster, **kw):
    """(object result+digest, columnar result+digest) for one workload."""
    out = []
    for engine in ("object", "columnar"):
        recorder = DigestRecorder(EventDigest(keep_events=True))
        result = simulate(
            trace, scheduler_factory(), cluster, engine=engine,
            sanitizer=recorder, **kw,
        )
        out.append((result, recorder))
    return out


def assert_identical(trace, scheduler_factory, cluster, **kw):
    (res_o, dig_o), (res_c, dig_c) = run_both(trace, scheduler_factory, cluster, **kw)
    assert dig_o.hexdigest() == dig_c.hexdigest(), (
        "event digests diverged between engines"
    )
    assert dig_o.digest.count == dig_c.digest.count
    assert dig_o.digest.events == dig_c.digest.events
    assert res_o.makespan == res_c.makespan
    assert res_o.events_processed == res_c.events_processed
    for a, b in zip(res_o.jobs, res_c.jobs):
        assert (a.job_id, a.start_time, a.map_stage_end, a.completion_time) == (
            b.job_id, b.start_time, b.map_stage_end, b.completion_time
        )
    assert len(res_o.task_records) == len(res_c.task_records)
    for a, b in zip(res_o.task_records, res_c.task_records):
        assert (a.kind, a.job_id, a.index, a.start, a.end, a.shuffle_end,
                a.first_wave) == (b.kind, b.job_id, b.index, b.start, b.end,
                                  b.shuffle_end, b.first_wave)


class TestDigestIdentityMatrix:
    @pytest.mark.parametrize("policy", sorted(ZOO_POLICIES))
    def test_full_zoo_bit_identical(self, policy):
        """Every zoo policy: object and columnar digests are bit-for-bit
        equal (dynamic policies exercise the transparent fallback)."""
        trace = make_zoo_trace()
        assert_identical(trace, ZOO_POLICIES[policy], ClusterConfig(16, 8))

    @pytest.mark.parametrize("policy", STATIC_POLICIES)
    def test_static_policies_take_kernel_path(self, policy):
        engine = ColumnarEngine(
            ClusterConfig(16, 8), ZOO_POLICIES[policy](), sanitizer=DigestRecorder()
        )
        engine.run(make_zoo_trace())
        assert engine.last_path == "kernel"
        assert engine.last_kernel_mode == "passes"
        assert engine.fallback_reason is None

    @pytest.mark.parametrize("policy", COLUMNAR_DYNAMIC_POLICIES)
    def test_columnar_dynamic_policies_take_replay_mode(self, policy):
        engine = ColumnarEngine(ClusterConfig(16, 8), ZOO_POLICIES[policy]())
        engine.run(make_zoo_trace())
        assert engine.last_path == "kernel"
        assert engine.last_kernel_mode == "replay"
        assert engine.fallback_reason is None

    @pytest.mark.parametrize("policy", FALLBACK_POLICIES)
    def test_uncontracted_dynamic_policies_fall_back(self, policy):
        engine = ColumnarEngine(ClusterConfig(16, 8), ZOO_POLICIES[policy]())
        engine.run(make_zoo_trace())
        assert engine.last_path == "object"
        assert "without the columnar contract" in engine.fallback_reason

    @pytest.mark.parametrize("slowstart", [0.0, 0.05, 0.5, 1.0])
    def test_slowstart_range(self, slowstart):
        trace = make_zoo_trace(seed=11)
        assert_identical(
            trace, FIFOScheduler, ClusterConfig(8, 4),
            min_map_percent_completed=slowstart,
        )

    @pytest.mark.parametrize(
        "caps", [(3, 2), (1, 1), (2, None), (None, 2)],
        ids=["3x2", "1x1", "2xNone", "Nonex2"],
    )
    def test_slot_caps(self, caps):
        trace = make_zoo_trace(seed=13)
        assert_identical(
            trace, lambda: CappedFIFOScheduler(*caps), ClusterConfig(8, 4)
        )

    @pytest.mark.parametrize("cluster", [(1, 1), (4, 2), (64, 64), (128, 128)])
    def test_cluster_shapes(self, cluster):
        trace = make_zoo_trace(seed=17)
        assert_identical(trace, FIFOScheduler, ClusterConfig(*cluster))

    def test_map_only_and_reduce_only_jobs(self):
        trace = [
            TraceJob(make_constant_profile("m", num_maps=6, num_reduces=0), 0.0),
            TraceJob(make_constant_profile("r", num_maps=0, num_reduces=3), 0.0),
            TraceJob(make_constant_profile("mr", num_maps=4, num_reduces=2), 5.0),
        ]
        assert_identical(trace, FIFOScheduler, ClusterConfig(4, 2))

    def test_simultaneous_arrivals(self):
        trace = [
            TraceJob(make_constant_profile(f"j{i}", num_maps=3, num_reduces=2), 10.0)
            for i in range(6)
        ]
        assert_identical(trace, FIFOScheduler, ClusterConfig(4, 2))

    def test_empty_trace(self):
        assert_identical([], FIFOScheduler, ClusterConfig(4, 4))

    def test_record_events_parity(self):
        trace = make_zoo_trace(seed=19, n=10)
        logs = []
        for engine in ("object", "columnar"):
            result = simulate(
                trace, FIFOScheduler(), ClusterConfig(8, 4), engine=engine,
                record_events=True, sanitize=False,
            )
            logs.append(result.event_log)
        assert len(logs[0]) == len(logs[1])
        for a, b in zip(*logs):
            assert (a.time, a.event_type, a.job_id, a.task_index) == (
                b.time, b.event_type, b.job_id, b.task_index
            )


def make_deadline_trace(seed: int = 7, n: int = 24) -> list[TraceJob]:
    """Like the zoo trace but every job has a deadline — tight ones mixed
    in so preemptive EDF variants actually kill tasks."""
    rng = np.random.default_rng(seed)
    trace = []
    for i in range(n):
        num_maps = int(rng.integers(1, 20))
        num_reduces = int(rng.integers(0, 8))
        profile = JobProfile(
            name=rng.choice(["WikiTrends", "Bayes", "Sort", "Grep"]),
            num_maps=num_maps,
            num_reduces=num_reduces,
            map_durations=rng.uniform(1, 40, num_maps),
            first_shuffle_durations=rng.uniform(1, 6, max(num_reduces, 1)),
            typical_shuffle_durations=rng.uniform(1, 5, max(num_reduces, 1)),
            reduce_durations=rng.uniform(0.5, 8, max(num_reduces, 1)),
        )
        submit = float(rng.uniform(0, 80))
        slack = float(rng.uniform(10, 60)) if rng.random() < 0.5 else float(
            rng.uniform(100, 600)
        )
        trace.append(TraceJob(profile, submit, deadline=submit + slack))
    return trace


class TestPreemptiveReplayIdentity:
    """Live preemption on the kernel's segmented-replay mode: every kill,
    requeue, and stale departure must hash identically to the object
    engine's preemptive run."""

    FACTORIES = {
        "MaxEDF+P": lambda: MaxEDFScheduler(preemptive=True),
        "MinEDF+P": lambda: MinEDFScheduler(preemptive=True),
    }

    @pytest.mark.parametrize("cluster", [(4, 2), (16, 8), (64, 64)])
    @pytest.mark.parametrize("policy", sorted(FACTORIES))
    def test_preemptive_edf_bit_identical(self, policy, cluster):
        trace = make_deadline_trace(seed=23)
        assert_identical(
            trace, self.FACTORIES[policy], ClusterConfig(*cluster),
            preemption=True,
        )

    @pytest.mark.parametrize("seed", [7, 11, 99])
    def test_preemptive_seeds_bit_identical(self, seed):
        trace = make_deadline_trace(seed=seed)
        assert_identical(
            trace, self.FACTORIES["MaxEDF+P"], ClusterConfig(8, 4),
            preemption=True,
        )

    @pytest.mark.parametrize("slowstart", [0.0, 0.5, 1.0])
    def test_preemption_x_slowstart(self, slowstart):
        trace = make_deadline_trace(seed=11)
        assert_identical(
            trace, self.FACTORIES["MinEDF+P"], ClusterConfig(8, 4),
            preemption=True, min_map_percent_completed=slowstart,
        )

    def test_preemptive_runs_actually_kill(self):
        """The matrix above is vacuous unless kills happen — prove they do."""
        trace = make_deadline_trace(seed=23)
        result = simulate(
            trace, MaxEDFScheduler(preemptive=True), ClusterConfig(16, 8),
            engine="columnar", preemption=True, sanitize=False,
        )
        assert any(r.killed for r in result.task_records)

    def test_live_preemption_takes_replay_mode(self):
        engine = ColumnarEngine(
            ClusterConfig(8, 4), MaxEDFScheduler(preemptive=True),
            preemption=True,
        )
        engine.run(make_deadline_trace(n=8))
        assert engine.last_path == "kernel"
        assert engine.last_kernel_mode == "replay"
        assert engine.fallback_reason is None

    def test_inert_preemption_stays_in_pass_mode(self):
        """FIFO never requests kills, so preemption=True is provably a
        no-op and the fast pass-mode kernel remains valid."""
        engine = ColumnarEngine(
            ClusterConfig(8, 4), FIFOScheduler(), preemption=True
        )
        engine.run(make_zoo_trace(n=6))
        assert engine.last_path == "kernel"
        assert engine.last_kernel_mode == "passes"


class TestColumnarDynamicIdentity:
    """Fair and compiled dynamic policy trees on the replay mode."""

    @pytest.mark.parametrize("cluster", [(4, 2), (16, 8), (64, 64)])
    def test_fair_bit_identical(self, cluster):
        from repro.schedulers import FairScheduler

        trace = make_zoo_trace(seed=7)
        assert_identical(trace, FairScheduler, ClusterConfig(*cluster))

    def test_fair_with_weights_bit_identical(self):
        from repro.schedulers import FairScheduler

        trace = make_zoo_trace(seed=11)
        factory = lambda: FairScheduler(
            weights={"Sort": 3.0, "Grep": 0.5, "Bayes": 2.0}
        )
        assert_identical(trace, factory, ClusterConfig(8, 4))

    def test_fair_with_inert_preemption_flag(self):
        """Default Fair is built with preemptive=False: preemption=True
        routes through replay's preemption bookkeeping without kills."""
        from repro.schedulers import FairScheduler

        trace = make_zoo_trace(seed=23)
        assert_identical(
            trace, FairScheduler, ClusterConfig(8, 4), preemption=True
        )

    @pytest.mark.parametrize("cluster", [(8, 4), (16, 8)])
    def test_fair_preemptive_live_kills_bit_identical(self, cluster):
        """Fair+P (HFS-style preemption) on the replay mode: hundreds of
        live kills, object and kernel event streams bit-for-bit equal."""
        from repro.schedulers import FairScheduler

        trace = make_zoo_trace(seed=31, n=40)
        factory = lambda: FairScheduler(preemptive=True)
        (res_o, _), (res_c, _) = run_both(
            trace, factory, ClusterConfig(*cluster), preemption=True
        )
        kills = sum(1 for r in res_c.task_records if r.killed)
        assert kills > 0
        assert kills == sum(1 for r in res_o.task_records if r.killed)
        assert_identical(
            trace, factory, ClusterConfig(*cluster), preemption=True
        )

    @pytest.mark.parametrize("slowstart", [0.0, 0.5, 1.0])
    def test_fair_x_slowstart(self, slowstart):
        from repro.schedulers import FairScheduler

        trace = make_zoo_trace(seed=13)
        assert_identical(
            trace, FairScheduler, ClusterConfig(8, 4),
            min_map_percent_completed=slowstart,
        )

    TREES = {
        "mix": {
            "version": 1,
            "name": "dyn-mix",
            "tree": {
                "score": [
                    {"feature": "running_maps", "weight": 1.0},
                    {"feature": "pending_reduces", "weight": 0.25},
                    {"feature": "job_age", "weight": -0.01},
                    {"feature": "deadline_slack", "weight": 0.001},
                ],
                "bias": 2.0,
            },
        },
        "switch": {
            "version": 1,
            "name": "dyn-switch",
            "tree": {
                "if": {"feature": "queue_depth", "op": ">", "value": 4},
                "then": {"score": [{"feature": "submit_time", "weight": 1.0}]},
                "else": {"score": [{"feature": "deadline", "weight": 1.0}]},
            },
        },
        "slots": {
            "version": 1,
            "name": "dyn-slots",
            "tree": {
                "if": {"feature": "free_map_slots", "op": "<=", "value": 2},
                "then": {
                    "score": [
                        {"feature": "map_fraction_completed", "weight": -1.0}
                    ]
                },
                "else": {"score": [{"feature": "total_work", "weight": 0.001}]},
            },
        },
        "direct": {
            "version": 1,
            "name": "dyn-direct",
            "tree": {"score": [{"feature": "running_reduces", "weight": 1.0}]},
        },
    }

    @pytest.mark.parametrize("tree", sorted(TREES))
    def test_policy_trees_bit_identical(self, tree):
        from repro.policy.compiler import compile_policy

        doc = self.TREES[tree]
        trace = make_zoo_trace(seed=7)
        for cluster in (ClusterConfig(16, 8), ClusterConfig(6, 3)):
            assert_identical(trace, lambda: compile_policy(doc), cluster)

    def test_dynamic_tree_takes_replay_mode(self):
        from repro.policy.compiler import compile_policy

        engine = ColumnarEngine(
            ClusterConfig(16, 8), compile_policy(self.TREES["mix"])
        )
        engine.run(make_zoo_trace(n=8))
        assert engine.last_path == "kernel"
        assert engine.last_kernel_mode == "replay"

    def test_static_tree_stays_in_pass_mode(self):
        """A tree with no dynamic features still compiles to a static
        policy and keeps the fastest mode."""
        from repro.policy.compiler import compile_policy

        doc = {
            "version": 1,
            "name": "static-tree",
            "tree": {"score": [{"feature": "submit_time", "weight": 1.0}]},
        }
        engine = ColumnarEngine(ClusterConfig(16, 8), compile_policy(doc))
        engine.run(make_zoo_trace(n=8))
        assert engine.last_path == "kernel"
        assert engine.last_kernel_mode == "passes"


class TestFallbackEnvelope:
    def test_preemption_digest_identical(self):
        """Inert preemption (FIFO) stays in pass mode; digests still match
        a directly built object engine."""
        trace = make_zoo_trace(seed=23, n=12)
        assert_identical(
            trace, FIFOScheduler, ClusterConfig(8, 4), preemption=True
        )

    def test_fallback_envelope_is_pinned(self):
        """The complete post-widening envelope: exactly these conditions
        leave the kernel, nothing else.  A new fallback reason appearing
        here is an envelope regression."""
        from repro.core.shuffle import NetworkShuffleModel
        from repro.schedulers import CapacityScheduler

        trace = make_zoo_trace(n=6)
        cases = {
            "pluggable shuffle model": ColumnarEngine(
                ClusterConfig(8, 4), FIFOScheduler(),
                shuffle_model=NetworkShuffleModel(1e6, 1e9),
            ),
            "state-inspecting sanitizer": ColumnarEngine(
                ClusterConfig(8, 4), FIFOScheduler(),
                sanitizer=Sanitizer(fail_fast=True),
            ),
            "without the columnar contract": ColumnarEngine(
                ClusterConfig(8, 4), CapacityScheduler({"default": 1.0})
            ),
        }
        for expected, engine in cases.items():
            engine.run(trace)
            assert engine.last_path == "object"
            assert expected in engine.fallback_reason
        # depends_on is per-trace, not per-engine configuration.
        profile = make_constant_profile()
        dep_trace = [TraceJob(profile, 0.0), TraceJob(profile, 0.0, depends_on=0)]
        engine = ColumnarEngine(ClusterConfig(8, 4), FIFOScheduler())
        engine.run(dep_trace)
        assert engine.fallback_reason == "workflow dependencies (depends_on)"
        # And nothing else falls back: preemption + a preemptive scheduler
        # + Fair all stay on the kernel now.
        from repro.schedulers import FairScheduler

        for scheduler, kw in [
            (MaxEDFScheduler(preemptive=True), {"preemption": True}),
            (FairScheduler(), {}),
            (FIFOScheduler(), {"preemption": True}),
        ]:
            engine = ColumnarEngine(ClusterConfig(8, 4), scheduler, **kw)
            engine.run(make_zoo_trace(n=6))
            assert engine.last_path == "kernel", scheduler.name
            assert engine.fallback_reason is None

    def test_state_inspecting_sanitizer_falls_back(self):
        engine = ColumnarEngine(
            ClusterConfig(8, 4), FIFOScheduler(),
            sanitizer=Sanitizer(fail_fast=True),
        )
        engine.run(make_zoo_trace(n=6))
        assert engine.last_path == "object"
        assert engine.fallback_reason == "state-inspecting sanitizer"

    def test_digest_recorder_stays_on_kernel(self):
        engine = ColumnarEngine(
            ClusterConfig(8, 4), FIFOScheduler(), sanitizer=DigestRecorder()
        )
        engine.run(make_zoo_trace(n=6))
        assert engine.last_path == "kernel"

    def test_dependencies_fall_back(self):
        profile = make_constant_profile()
        trace = [
            TraceJob(profile, 0.0),
            TraceJob(profile, 0.0, depends_on=0),
        ]
        engine = ColumnarEngine(ClusterConfig(8, 4), FIFOScheduler())
        result = engine.run(trace)
        assert engine.last_path == "object"
        assert all(j.completion_time is not None for j in result.jobs)

    def test_sanitized_run_under_full_sanitizer_is_clean(self):
        """sanitize=True builds the full Sanitizer: the run falls back and
        must report zero invariant violations."""
        engine = ColumnarEngine(
            ClusterConfig(8, 4), FIFOScheduler(), sanitize=True
        )
        engine.run(make_zoo_trace(n=8))
        assert engine.last_path == "object"
        assert engine.sanitizer.violations == []

    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine must be"):
            simulate([], FIFOScheduler(), ClusterConfig(4, 4), engine="gpu")

    def test_validates_slowstart_like_object_engine(self):
        with pytest.raises(ValueError, match="min_map_percent_completed"):
            ColumnarEngine(
                ClusterConfig(4, 4), FIFOScheduler(),
                min_map_percent_completed=1.5,
            )


class TestStallParity:
    def test_zero_reduce_slots_stall_message_identical(self):
        trace = [TraceJob(make_constant_profile(), 0.0)]
        messages = []
        for engine in ("object", "columnar"):
            with pytest.raises(RuntimeError, match="simulation stalled") as exc:
                simulate(
                    trace, FIFOScheduler(), ClusterConfig(4, 0),
                    engine=engine, sanitize=False,
                )
            messages.append(str(exc.value))
        assert messages[0] == messages[1]

    def test_zero_reduce_cap_stalls_both_engines(self):
        trace = [TraceJob(make_constant_profile(), 0.0)]
        for engine in ("object", "columnar"):
            with pytest.raises(RuntimeError, match="simulation stalled"):
                simulate(
                    trace, CappedFIFOScheduler(2, 0), ClusterConfig(4, 4),
                    engine=engine, sanitize=False,
                )


class TestDualRunDivergence:
    def test_dual_run_on_columnar_engine_is_clean(self):
        """The simsan DIV001 check accepts a ColumnarEngine factory: it
        installs the full Sanitizer (fallback path) and both replays must
        agree with zero violations."""
        trace = make_zoo_trace(seed=29, n=10)
        outcome = dual_run(
            lambda: ColumnarEngine(ClusterConfig(8, 4), FIFOScheduler()), trace
        )
        assert outcome.ok, outcome.report.describe()

    def test_cross_engine_digests_comparable(self):
        """An object run and a kernel run hash to the same fingerprint, so
        digests from either path are interchangeable cache/verify keys."""
        trace = make_zoo_trace(seed=31, n=10)
        digests = []
        for engine in ("object", "columnar"):
            recorder = DigestRecorder(EventDigest(keep_events=True))
            simulate(
                trace, FIFOScheduler(), ClusterConfig(8, 4),
                engine=engine, sanitizer=recorder,
            )
            digests.append(recorder.digest)
        from repro.sanitize.digest import compare_digests

        report = compare_digests(*digests)
        assert not report.diverged, report.describe()


class TestUpdateMany:
    def test_bulk_update_matches_per_event_update(self, rng):
        n = 500
        times = np.sort(rng.uniform(0, 1000, n))
        etypes = rng.integers(0, 7, n)
        job_ids = rng.integers(0, 40, n)
        tasks = rng.integers(-1, 30, n)
        one = EventDigest(keep_events=True)
        for row in zip(times, etypes, job_ids, tasks):
            one.update(float(row[0]), int(row[1]), int(row[2]), int(row[3]))
        bulk = EventDigest(keep_events=True)
        bulk.update_many(times, etypes, job_ids, tasks)
        assert one.hexdigest() == bulk.hexdigest()
        assert one.count == bulk.count == n
        assert one.events == bulk.events

    def test_bulk_update_empty(self):
        digest = EventDigest()
        digest.update_many(
            np.empty(0), np.empty(0, int), np.empty(0, int), np.empty(0, int)
        )
        assert digest.count == 0


class TestColumnsInput:
    def test_kernel_accepts_trace_columns(self):
        from repro.core.columns import TraceColumns

        trace = make_zoo_trace(seed=37, n=8)
        columns = TraceColumns.from_trace(trace)
        engine = ColumnarEngine(
            ClusterConfig(8, 4), FIFOScheduler(), sanitizer=DigestRecorder()
        )
        from_columns = engine.run(columns)
        assert engine.last_path == "kernel"
        direct = simulate(
            trace, FIFOScheduler(), ClusterConfig(8, 4), engine="object",
            sanitize=False,
        )
        assert from_columns.makespan == direct.makespan
        assert from_columns.events_processed == direct.events_processed

    def test_all_jobs_complete(self):
        trace = make_zoo_trace(seed=41, n=12)
        result = simulate(
            trace, FIFOScheduler(), ClusterConfig(16, 8), engine="columnar",
            sanitize=False,
        )
        assert all(j.completion_time is not None for j in result.jobs)
        assert result.makespan == max(j.completion_time for j in result.jobs)


class TestExecutorPlumbing:
    def test_engine_is_part_of_cache_key(self):
        from repro.parallel.executor import SchedulerSpec, SimTask

        spec = SchedulerSpec(name="fifo")
        columnar = SimTask(trace_id="t", scheduler=spec, engine="columnar")
        objectish = SimTask(trace_id="t", scheduler=spec, engine="object")
        assert columnar.engine_config() != objectish.engine_config()
        assert columnar.engine_config()["engine"] == "columnar"

    def test_simulate_many_digests_match_across_engines(self, tmp_path):
        from repro.parallel import simulate_many
        from repro.parallel.executor import SchedulerSpec, SimTask

        trace = make_zoo_trace(seed=43, n=10)
        spec = SchedulerSpec(name="fifo")
        digests = {}
        for engine in ("object", "columnar"):
            task = SimTask(
                trace_id="t", scheduler=spec, cluster=ClusterConfig(8, 4),
                engine=engine,
            )
            outcomes = simulate_many({"t": trace}, [task], workers=0)
            digests[engine] = outcomes[0].result.event_digest
        assert digests["object"] == digests["columnar"]
        assert digests["object"] is not None


class TestServiceProtocol:
    def test_engine_config_validated(self):
        from repro.service.protocol import ProtocolError, parse_request
        from repro.trace.schema import trace_to_dict

        trace = [TraceJob(make_constant_profile(), 0.0)]
        doc = {"trace": trace_to_dict(trace), "config": {"engine": "gpu"}}
        with pytest.raises(ProtocolError, match="config.engine"):
            parse_request(doc, trace_root=None)

    def test_engine_config_reaches_task(self):
        from repro.service.protocol import parse_request
        from repro.trace.schema import trace_to_dict

        trace = [TraceJob(make_constant_profile(), 0.0)]
        for engine in ("object", "columnar"):
            doc = {"trace": trace_to_dict(trace), "config": {"engine": engine}}
            request = parse_request(doc, trace_root=None)
            assert request.engine == engine
            assert request.task().engine == engine
