"""Tests for the trace-scaling extension (the paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.kl import histogram_kl
from repro.trace.scaling import scale_profile

from conftest import make_constant_profile, make_random_profile


class TestScaleCounts:
    def test_doubles_task_counts(self, random_profile):
        scaled = scale_profile(random_profile, 2.0)
        assert scaled.num_maps == random_profile.num_maps * 2
        assert scaled.num_reduces == random_profile.num_reduces * 2
        assert scaled.map_durations.size == scaled.num_maps

    def test_fractional_scale_rounds_up(self):
        profile = make_constant_profile(num_maps=10, num_reduces=4)
        scaled = scale_profile(profile, 1.25)
        assert scaled.num_maps == 13
        assert scaled.num_reduces == 5

    def test_downscale_keeps_at_least_one_task(self):
        profile = make_constant_profile(num_maps=10, num_reduces=4)
        scaled = scale_profile(profile, 0.01)
        assert scaled.num_maps == 1
        assert scaled.num_reduces == 1

    def test_map_only_profile(self):
        profile = make_constant_profile(num_maps=6, num_reduces=0)
        scaled = scale_profile(profile, 3.0)
        assert scaled.num_maps == 18
        assert scaled.num_reduces == 0

    def test_default_name_encodes_scale(self, random_profile):
        assert scale_profile(random_profile, 2.0).name == "rand@x2"
        assert scale_profile(random_profile, 2.0, name="big").name == "big"


class TestScaleDurations:
    def test_durations_drawn_from_original_values(self, random_profile):
        scaled = scale_profile(random_profile, 4.0, seed=1)
        assert set(np.unique(scaled.map_durations)) <= set(random_profile.map_durations)
        assert set(np.unique(scaled.reduce_durations)) <= set(
            random_profile.reduce_durations
        )

    def test_duration_distribution_preserved(self, rng):
        """Scaled task durations stay statistically close to the original
        (small symmetric KL divergence) — the Section II invariance."""
        profile = make_random_profile(rng, num_maps=300, num_reduces=100)
        scaled = scale_profile(profile, 3.0, seed=2)
        assert histogram_kl(profile.map_durations, scaled.map_durations) < 0.5

    def test_deterministic_under_seed(self, random_profile):
        a = scale_profile(random_profile, 2.5, seed=9)
        b = scale_profile(random_profile, 2.5, seed=9)
        assert np.array_equal(a.map_durations, b.map_durations)

    def test_pinned_reduces_stretch_shuffle(self):
        profile = make_constant_profile(
            num_maps=4, num_reduces=4, typical_shuffle_s=3.0, reduce_s=2.0
        )
        scaled = scale_profile(profile, 2.0, scale_reduces=False)
        assert scaled.num_reduces == 4
        # Each reduce now pulls 2x the data: shuffle and reduce stretch.
        assert np.all(scaled.typical_shuffle_durations == pytest.approx(6.0))
        assert np.all(scaled.reduce_durations == pytest.approx(4.0))

    def test_scaled_reduces_keep_duration_scale(self):
        profile = make_constant_profile(num_maps=4, num_reduces=4, reduce_s=2.0)
        scaled = scale_profile(profile, 2.0, scale_reduces=True)
        assert scaled.num_reduces == 8
        assert np.all(scaled.reduce_durations == pytest.approx(2.0))

    def test_invalid_scale_rejected(self, random_profile):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                scale_profile(random_profile, bad)
