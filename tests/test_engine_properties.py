"""Property-based tests of simulator-engine invariants (hypothesis)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import functools
import sys

from repro.core import ClusterConfig, JobProfile, TraceJob
from repro.core import simulate as _simulate
from repro.schedulers import FIFOScheduler, MaxEDFScheduler, MinEDFScheduler

simulate = _simulate


@pytest.fixture(autouse=True)
def _both_engines(engine_kind, monkeypatch):
    """Run every property in this module on both execution paths.

    Function-scoped on purpose: one engine per test invocation, stable
    across all hypothesis examples of that invocation.
    """
    monkeypatch.setattr(
        sys.modules[__name__],
        "simulate",
        functools.partial(_simulate, engine=engine_kind),
    )

durations = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)


@st.composite
def profiles(draw, max_maps=12, max_reduces=8):
    num_maps = draw(st.integers(min_value=0, max_value=max_maps))
    min_reduces = 1 if num_maps == 0 else 0
    num_reduces = draw(st.integers(min_value=min_reduces, max_value=max_reduces))
    return JobProfile(
        name=draw(st.sampled_from(["a", "b", "c"])),
        num_maps=num_maps,
        num_reduces=num_reduces,
        map_durations=np.array(
            draw(st.lists(durations, min_size=max(num_maps, 1), max_size=max(num_maps, 1)))
        )
        if num_maps
        else np.empty(0),
        first_shuffle_durations=np.array(
            draw(st.lists(durations, min_size=1, max_size=4))
        )
        if num_reduces
        else np.empty(0),
        typical_shuffle_durations=np.array(
            draw(st.lists(durations, min_size=1, max_size=4))
        )
        if num_reduces
        else np.empty(0),
        reduce_durations=np.array(
            draw(st.lists(durations, min_size=num_reduces, max_size=num_reduces))
        )
        if num_reduces
        else np.empty(0),
    )


@st.composite
def traces(draw, max_jobs=6):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=50.0))
        profile = draw(profiles())
        deadline_gap = draw(st.one_of(st.none(), st.floats(min_value=1.0, max_value=500.0)))
        jobs.append(
            TraceJob(profile, t, deadline=None if deadline_gap is None else t + deadline_gap)
        )
    return jobs


@st.composite
def clusters(draw):
    return ClusterConfig(
        draw(st.integers(min_value=1, max_value=16)),
        draw(st.integers(min_value=1, max_value=16)),
    )


class TestEngineInvariants:
    @settings(max_examples=60, deadline=None)
    @given(trace=traces(), cluster=clusters())
    def test_every_job_completes(self, trace, cluster):
        result = simulate(trace, FIFOScheduler(), cluster)
        for job in result.jobs:
            assert job.completion_time is not None
            assert job.completion_time >= job.submit_time

    @settings(max_examples=40, deadline=None)
    @given(trace=traces(), cluster=clusters())
    def test_task_records_are_consistent(self, trace, cluster):
        result = simulate(trace, FIFOScheduler(), cluster)
        per_job_tasks: dict[int, int] = {}
        for record in result.task_records:
            assert record.end >= record.start
            assert math.isfinite(record.end)
            if record.kind == "reduce":
                assert record.shuffle_end is not None
                assert record.start <= record.shuffle_end <= record.end
            per_job_tasks[record.job_id] = per_job_tasks.get(record.job_id, 0) + 1
        for job in result.jobs:
            assert per_job_tasks.get(job.job_id, 0) == job.num_maps + job.num_reduces

    @settings(max_examples=40, deadline=None)
    @given(trace=traces(), cluster=clusters())
    def test_makespan_bounds(self, trace, cluster):
        """Makespan is at least the busiest-dimension work bound and at
        most the serial execution of everything."""
        result = simulate(trace, FIFOScheduler(), cluster)
        serial = sum(tj.profile.total_task_seconds() for tj in trace) + sum(
            tj.profile.first_shuffle_stats.max for tj in trace
        )
        last_submit = max(tj.submit_time for tj in trace)
        assert result.makespan <= last_submit + serial + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(), cluster=clusters())
    def test_slot_capacity_respected(self, trace, cluster):
        result = simulate(trace, FIFOScheduler(), cluster)
        for kind, limit in (("map", cluster.map_slots), ("reduce", cluster.reduce_slots)):
            events = []
            for r in result.task_records:
                if r.kind == kind:
                    events.append((r.start, 1))
                    events.append((r.end, -1))
            events.sort(key=lambda e: (e[0], e[1]))
            running = 0
            for _, delta in events:
                running += delta
                assert running <= limit

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(), cluster=clusters())
    def test_fast_path_matches_narrow_interface(self, trace, cluster):
        """The static-priority heap path must produce the exact schedule
        the paper's choose-next interface produces."""

        class DynamicFIFO(FIFOScheduler):
            static_priority = False

        fast = simulate(trace, FIFOScheduler(), cluster)
        slow = simulate(trace, DynamicFIFO(), cluster)
        assert fast.completion_times() == slow.completion_times()

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(), cluster=clusters())
    def test_fast_path_matches_for_maxedf(self, trace, cluster):
        class DynamicMaxEDF(MaxEDFScheduler):
            static_priority = False

        fast = simulate(trace, MaxEDFScheduler(), cluster)
        slow = simulate(trace, DynamicMaxEDF(), cluster)
        assert fast.completion_times() == slow.completion_times()

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(), cluster=clusters())
    def test_fast_path_matches_for_minedf(self, trace, cluster):
        class DynamicMinEDF(MinEDFScheduler):
            static_priority = False

        fast = simulate(trace, MinEDFScheduler(), cluster)
        slow = simulate(trace, DynamicMinEDF(), cluster)
        assert fast.completion_times() == slow.completion_times()

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(), cluster=clusters())
    def test_replay_of_replay_is_identical(self, trace, cluster):
        r1 = simulate(trace, FIFOScheduler(), cluster)
        r2 = simulate(trace, FIFOScheduler(), cluster)
        assert r1.completion_times() == r2.completion_times()
        assert r1.events_processed == r2.events_processed

    @settings(max_examples=30, deadline=None)
    @given(trace=traces())
    def test_more_slots_never_hurt_solo_jobs(self, trace):
        """For a single job, a strictly larger cluster cannot be slower.

        Caveat found by hypothesis: the raw property is FALSE for
        profiles whose first-shuffle durations exceed the typical ones —
        a bigger cluster pulls more reduces into the first wave, where
        they draw from the (larger) first-shuffle array.  That is
        correct replay semantics, not an engine defect, so the property
        is asserted for profiles with identical first/typical shuffle
        pricing, where wave membership cannot change task durations.
        """
        profile = trace[0].profile
        if profile.num_reduces > 0:
            from repro.core import JobProfile

            shuffle = profile.typical_shuffle_durations
            if not shuffle.size:
                shuffle = profile.first_shuffle_durations
            profile = JobProfile(
                name=profile.name,
                num_maps=profile.num_maps,
                num_reduces=profile.num_reduces,
                map_durations=profile.map_durations,
                first_shuffle_durations=shuffle,
                typical_shuffle_durations=shuffle,
                reduce_durations=profile.reduce_durations,
            )
        small = simulate([TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(2, 2))
        big = simulate([TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(8, 8))
        assert big.makespan <= small.makespan + 1e-9
