"""Tests for the Mumak baseline and the Rumen trace extractor."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ClusterConfig, TraceJob, simulate
from repro.hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from repro.mumak.rumen import dumps_rumen, extract_rumen_trace, rumen_to_trace
from repro.mumak.simulator import MumakSimulator
from repro.schedulers import FIFOScheduler

from conftest import make_constant_profile, make_random_profile


class TestMumakReduceModel:
    def test_reduce_completes_without_shuffle_time(self):
        """Mumak: reduce runtime = all-maps time + reduce phase, shuffle
        ignored — the paper's documented inaccuracy."""
        profile = make_constant_profile(
            num_maps=4, num_reduces=1, map_s=10.0,
            first_shuffle_s=100.0, typical_shuffle_s=100.0, reduce_s=3.0,
        )
        mumak = MumakSimulator(num_nodes=4, heartbeat_interval=1.0)
        result = mumak.run([TraceJob(profile, 0.0)])
        # Maps ~10s (+heartbeat offsets) + reduce 3s; the 100s shuffle is
        # completely absent from the estimate.
        assert result.jobs[0].duration < 20.0

    def test_underestimates_shuffle_heavy_jobs_vs_simmr(self, rng):
        profile = make_random_profile(rng, num_maps=16, num_reduces=8)
        simmr = simulate([TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(8, 8))
        mumak = MumakSimulator(num_nodes=8, heartbeat_interval=0.5).run(
            [TraceJob(profile, 0.0)]
        )
        assert mumak.jobs[0].duration < simmr.jobs[0].duration

    def test_map_only_jobs_agree_with_simmr(self):
        """Without reduces there is no shuffle to mis-model: Mumak and
        SimMR should agree up to heartbeat quantization."""
        profile = make_constant_profile(num_maps=8, num_reduces=0, map_s=10.0)
        simmr = simulate([TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(8, 8))
        mumak = MumakSimulator(num_nodes=8, heartbeat_interval=0.1).run(
            [TraceJob(profile, 0.0)]
        )
        assert mumak.jobs[0].duration == pytest.approx(simmr.jobs[0].duration, abs=0.5)

    def test_all_jobs_complete(self, rng):
        trace = [
            TraceJob(make_random_profile(rng, f"j{i}", 10, 4), float(i * 3))
            for i in range(4)
        ]
        result = MumakSimulator(num_nodes=4, heartbeat_interval=1.0).run(trace)
        assert all(j.completion_time is not None for j in result.jobs)
        assert result.scheduler_name == "Mumak/FIFO"

    def test_simulates_many_more_events_than_simmr(self, rng):
        """Heartbeat simulation is Mumak's speed problem (Figure 6)."""
        trace = [TraceJob(make_random_profile(rng, "j", 30, 10), 0.0)]
        simmr = simulate(trace, FIFOScheduler(), ClusterConfig(8, 8))
        mumak = MumakSimulator(num_nodes=8).run(trace)
        assert mumak.events_processed > simmr.events_processed

    def test_validation(self):
        with pytest.raises(ValueError):
            MumakSimulator(num_nodes=0)
        with pytest.raises(ValueError):
            MumakSimulator(heartbeat_interval=0.0)


class TestRumen:
    def emulated_history(self, rng) -> str:
        cfg = EmulatorConfig(num_nodes=4, heartbeat_interval=1.0, seed=0)
        trace = [TraceJob(make_random_profile(rng, "app", 6, 3), 0.0)]
        return HadoopClusterEmulator(cfg).run(trace).history_text()

    def test_extracts_verbose_job_documents(self, rng):
        docs = extract_rumen_trace(self.emulated_history(rng))
        assert len(docs) == 1
        job = docs[0]
        # Rumen's "more than 40 properties": job-level keys plus nested
        # task/attempt records.
        assert len(job.keys()) > 20
        assert len(job["mapTasks"]) == 6
        assert len(job["reduceTasks"]) == 3
        attempt = job["mapTasks"][0]["attempts"][0]
        assert {"startTime", "finishTime", "hostName"} <= set(attempt)

    def test_reduce_tasks_keep_phase_timestamps(self, rng):
        docs = extract_rumen_trace(self.emulated_history(rng))
        att = docs[0]["reduceTasks"][0]["attempts"][0]
        assert att["shuffleFinished"] is not None
        assert att["sortFinished"] is not None

    def test_rumen_to_trace_round_trip(self, rng):
        history = self.emulated_history(rng)
        trace = rumen_to_trace(extract_rumen_trace(history))
        assert len(trace) == 1
        profile = trace[0].profile
        assert profile.num_maps == 6
        assert profile.num_reduces == 3
        # Same profile the selective MRProfiler extracts.
        from repro.mrprofiler import profile_history

        mr = profile_history(history)[0].profile
        assert np.allclose(profile.map_durations, mr.map_durations)
        assert np.allclose(profile.reduce_durations, mr.reduce_durations)

    def test_rumen_to_trace_empty(self):
        assert rumen_to_trace([]) == []

    def test_dumps_one_json_object_per_line(self, rng):
        docs = extract_rumen_trace(self.emulated_history(rng))
        text = dumps_rumen(docs)
        lines = [ln for ln in text.splitlines() if ln]
        assert len(lines) == len(docs)
        assert json.loads(lines[0])["jobID"].startswith("job_")


class TestMumakSchedulers:
    def test_runs_real_schedulers_as_is(self):
        """Mumak's design goal: plug in actual scheduler implementations."""
        from repro.schedulers import MaxEDFScheduler

        early = make_constant_profile(name="early", num_maps=6, num_reduces=0, map_s=10.0)
        late = make_constant_profile(name="late", num_maps=6, num_reduces=0, map_s=10.0)
        trace = [
            TraceJob(late, 0.0, deadline=10000.0),
            TraceJob(early, 0.5, deadline=100.0),
        ]
        mumak = MumakSimulator(num_nodes=3, heartbeat_interval=0.1,
                               scheduler=MaxEDFScheduler())
        result = mumak.run(trace)
        assert result.scheduler_name == "Mumak/MaxEDF"
        # The earlier-deadline job overtakes despite later submission.
        assert result.jobs[1].completion_time < result.jobs[0].completion_time
