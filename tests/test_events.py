"""Unit and property tests for the event primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.events import Event, EventQueue, EventType


class TestEvent:
    def test_fields(self):
        e = Event(1.5, EventType.JOB_ARRIVAL, 3, task_index=7)
        assert e.time == 1.5
        assert e.event_type is EventType.JOB_ARRIVAL
        assert e.job_id == 3
        assert e.task_index == 7

    def test_task_index_defaults_to_none(self):
        assert Event(0.0, EventType.JOB_ARRIVAL, 0).task_index is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Event(-0.1, EventType.JOB_ARRIVAL, 0)

    def test_frozen(self):
        e = Event(0.0, EventType.JOB_ARRIVAL, 0)
        with pytest.raises(AttributeError):
            e.time = 1.0  # type: ignore[misc]


class TestEventTypePriorities:
    def test_seven_types(self):
        assert len(EventType) == 7

    def test_departures_precede_arrivals(self):
        assert EventType.MAP_TASK_DEPARTURE < EventType.MAP_TASK_ARRIVAL
        assert EventType.REDUCE_TASK_DEPARTURE < EventType.REDUCE_TASK_ARRIVAL
        assert EventType.JOB_DEPARTURE < EventType.JOB_ARRIVAL

    def test_all_maps_finished_between_map_and_reduce_departures(self):
        assert EventType.MAP_TASK_DEPARTURE < EventType.ALL_MAPS_FINISHED
        assert EventType.ALL_MAPS_FINISHED < EventType.REDUCE_TASK_DEPARTURE


class TestEventQueue:
    def test_empty(self):
        q = EventQueue()
        assert len(q) == 0
        assert not q
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()

    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            q.push(Event(t, EventType.JOB_ARRIVAL, 0))
        times = [q.pop().time for _ in range(5)]
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_same_time_orders_by_type_priority(self):
        q = EventQueue()
        q.push(Event(1.0, EventType.MAP_TASK_ARRIVAL, 0))
        q.push(Event(1.0, EventType.MAP_TASK_DEPARTURE, 1))
        q.push(Event(1.0, EventType.JOB_ARRIVAL, 2))
        order = [q.pop().event_type for _ in range(3)]
        assert order == [
            EventType.MAP_TASK_DEPARTURE,
            EventType.JOB_ARRIVAL,
            EventType.MAP_TASK_ARRIVAL,
        ]

    def test_same_time_same_type_is_fifo(self):
        q = EventQueue()
        for job_id in range(10):
            q.push(Event(2.0, EventType.MAP_TASK_ARRIVAL, job_id))
        assert [q.pop().job_id for _ in range(10)] == list(range(10))

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(Event(1.0, EventType.JOB_ARRIVAL, 0))
        assert q.peek().job_id == 0
        assert q.peek_time() == 1.0
        assert len(q) == 1

    def test_total_pushed_counts_lifetime(self):
        q = EventQueue()
        for i in range(5):
            q.push(Event(float(i), EventType.JOB_ARRIVAL, i))
        q.pop()
        q.pop()
        assert q.total_pushed == 5

    def test_iteration_preserves_queue(self):
        q = EventQueue()
        for t in (3.0, 1.0, 2.0):
            q.push(Event(t, EventType.JOB_ARRIVAL, 0))
        assert [e.time for e in q] == [1.0, 2.0, 3.0]
        assert len(q) == 3

    def test_clear(self):
        q = EventQueue()
        q.push(Event(0.0, EventType.JOB_ARRIVAL, 0))
        q.clear()
        assert not q

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.sampled_from(list(EventType)),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=200,
        )
    )
    def test_property_pop_order_is_total(self, triples):
        """Pops are sorted by (time, type) regardless of push order."""
        q = EventQueue()
        for t, et, jid in triples:
            q.push(Event(t, et, jid))
        popped = [q.pop() for _ in range(len(triples))]
        keys = [(e.time, int(e.event_type)) for e in popped]
        assert keys == sorted(keys)

    @given(st.permutations(list(range(12))))
    def test_property_insertion_order_independence(self, perm):
        """Two queues with the same events pop identically (stable tie-break
        applies only to genuinely identical keys)."""
        events = [Event(float(i % 3), EventType.MAP_TASK_DEPARTURE, i) for i in range(12)]
        q1 = EventQueue()
        for e in events:
            q1.push(e)
        # Same multiset of (time, type) keys, different job ids order —
        # sequence numbers keep FIFO within equal keys.
        times1 = [(e.time, e.event_type) for e in (q1.pop() for _ in range(12))]
        assert times1 == sorted(times1, key=lambda k: (k[0], int(k[1])))
