"""Shared fixtures for the SimMR test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterConfig, JobProfile, TraceJob


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch) -> None:
    """Point the sweep result cache at a per-test temp dir.

    Keeps tests from writing to (or being poisoned by) the developer's
    real ``~/.cache/simmr`` store — the CLI enables the cache by default.
    """
    monkeypatch.setenv("SIMMR_CACHE_DIR", str(tmp_path_factory.mktemp("simmr-cache")))


@pytest.fixture(params=["object", "columnar"])
def engine_kind(request) -> str:
    """Both execution paths of the engine split (see docs/engine-internals.md).

    Suites that request this fixture run every test twice — once on the
    object-per-event loop, once on the columnar kernel — so behavioural
    pins hold on both paths.  Pass it as ``simulate(..., engine=engine_kind)``.
    """
    return request.param


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def cluster64() -> ClusterConfig:
    """The paper's testbed shape: 64 map + 64 reduce slots."""
    return ClusterConfig(64, 64)


def make_constant_profile(
    name: str = "const",
    num_maps: int = 8,
    num_reduces: int = 4,
    map_s: float = 10.0,
    first_shuffle_s: float = 5.0,
    typical_shuffle_s: float = 4.0,
    reduce_s: float = 3.0,
) -> JobProfile:
    """A profile with constant durations — analytically predictable."""
    return JobProfile(
        name=name,
        num_maps=num_maps,
        num_reduces=num_reduces,
        map_durations=np.full(max(num_maps, 1), map_s) if num_maps else np.empty(0),
        first_shuffle_durations=(
            np.full(max(num_reduces, 1), first_shuffle_s) if num_reduces else np.empty(0)
        ),
        typical_shuffle_durations=(
            np.full(max(num_reduces, 1), typical_shuffle_s) if num_reduces else np.empty(0)
        ),
        reduce_durations=np.full(max(num_reduces, 1), reduce_s) if num_reduces else np.empty(0),
    )


def make_random_profile(
    rng: np.random.Generator,
    name: str = "rand",
    num_maps: int = 20,
    num_reduces: int = 10,
) -> JobProfile:
    return JobProfile(
        name=name,
        num_maps=num_maps,
        num_reduces=num_reduces,
        map_durations=rng.uniform(1, 30, num_maps) if num_maps else np.empty(0),
        first_shuffle_durations=rng.uniform(2, 8, num_reduces) if num_reduces else np.empty(0),
        typical_shuffle_durations=rng.uniform(2, 8, num_reduces) if num_reduces else np.empty(0),
        reduce_durations=rng.uniform(0.5, 5, num_reduces) if num_reduces else np.empty(0),
    )


@pytest.fixture
def constant_profile() -> JobProfile:
    return make_constant_profile()


@pytest.fixture
def random_profile(rng: np.random.Generator) -> JobProfile:
    return make_random_profile(rng)


@pytest.fixture
def single_job_trace(constant_profile: JobProfile) -> list[TraceJob]:
    return [TraceJob(constant_profile, 0.0)]
