"""Tests for result containers and combined-feature engine scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ClusterConfig,
    JobResult,
    NetworkShuffleModel,
    SimulatorEngine,
    TraceJob,
    simulate,
)
from repro.schedulers import FIFOScheduler, MinEDFScheduler

from conftest import make_constant_profile


class TestJobResult:
    def make(self, completion=50.0, deadline=None):
        return JobResult(
            job_id=0, name="j", submit_time=10.0, start_time=11.0,
            map_stage_end=30.0, completion_time=completion, deadline=deadline,
            num_maps=4, num_reduces=2,
        )

    def test_duration(self):
        assert self.make().duration == pytest.approx(40.0)

    def test_unfinished_duration_none(self):
        assert self.make(completion=None).duration is None

    def test_met_deadline(self):
        assert self.make(deadline=60.0).met_deadline is True
        assert self.make(deadline=40.0).met_deadline is False
        assert self.make(deadline=None).met_deadline is None

    def test_relative_deadline_exceeded(self):
        assert self.make(deadline=40.0).relative_deadline_exceeded() == pytest.approx(
            10.0 / 40.0
        )
        assert self.make(deadline=60.0).relative_deadline_exceeded() == 0.0
        assert self.make(deadline=None).relative_deadline_exceeded() == 0.0


class TestSimulationResultHelpers:
    @pytest.fixture
    def result(self):
        profile = make_constant_profile(num_maps=4, num_reduces=2)
        trace = [TraceJob(profile, 0.0, deadline=10.0), TraceJob(profile, 5.0)]
        return simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))

    def test_job_lookup(self, result):
        assert result.job(1).submit_time == 5.0
        with pytest.raises(KeyError):
            result.job(9)

    def test_jobs_missed_deadline(self, result):
        missed = result.jobs_missed_deadline()
        assert [j.job_id for j in missed] == [0]  # 10s deadline is impossible

    def test_len_and_iter(self, result):
        assert len(result) == 2
        assert [j.job_id for j in result] == [0, 1]

    def test_task_records_for_filters(self, result):
        maps = result.task_records_for(0, "map")
        assert len(maps) == 4
        everything = result.task_records_for(0)
        assert len(everything) == 6

    def test_events_per_second_positive(self, result):
        assert result.events_per_second > 0


class TestFeatureCombinations:
    def test_dependencies_with_deadline_scheduler(self):
        """A workflow's final-stage deadline drives MinEDF demands."""
        profile = make_constant_profile(num_maps=8, num_reduces=0, map_s=10.0)
        trace = [
            TraceJob(profile, 0.0),
            TraceJob(profile, 0.0, deadline=200.0, depends_on=0),
        ]
        result = simulate(trace, MinEDFScheduler(), ClusterConfig(8, 8))
        assert result.jobs[1].start_time >= result.jobs[0].completion_time
        assert result.jobs[1].completion_time <= 200.0

    def test_dependencies_with_preemption(self):
        """A dependent urgent job preempts when it finally arrives."""
        parent = make_constant_profile(name="parent", num_maps=2, num_reduces=0, map_s=5.0)
        hog = make_constant_profile(name="hog", num_maps=8, num_reduces=0, map_s=100.0)
        child = make_constant_profile(name="child", num_maps=4, num_reduces=0, map_s=5.0)
        trace = [
            TraceJob(parent, 0.0, deadline=20.0),
            TraceJob(hog, 1.0, deadline=10000.0),
            TraceJob(child, 0.0, deadline=40.0, depends_on=0),
        ]
        from repro.schedulers import MaxEDFScheduler

        engine = SimulatorEngine(
            ClusterConfig(4, 4), MaxEDFScheduler(preemptive=True), preemption=True
        )
        result = engine.run(trace)
        assert result.jobs[2].completion_time <= 40.0
        assert any(r.killed for r in result.task_records)

    def test_shuffle_model_with_dependencies(self):
        profile = make_constant_profile(num_maps=2, num_reduces=2, map_s=5.0, reduce_s=1.0)
        model = NetworkShuffleModel(1e8, 1e8, first_wave_fraction=1.0)
        trace = [TraceJob(profile, 0.0), TraceJob(profile, 0.0, depends_on=0)]
        engine = SimulatorEngine(
            ClusterConfig(4, 4), FIFOScheduler(), shuffle_model=model
        )
        result = engine.run(trace)
        assert result.jobs[1].start_time >= result.jobs[0].completion_time

    def test_workflow_chain_under_contention(self):
        """Dependent stages interleave correctly with unrelated jobs."""
        stage = make_constant_profile(name="stage", num_maps=4, num_reduces=0, map_s=10.0)
        other = make_constant_profile(name="other", num_maps=4, num_reduces=0, map_s=10.0)
        trace = [
            TraceJob(stage, 0.0),
            TraceJob(other, 0.0),
            TraceJob(stage, 0.0, depends_on=0),
        ]
        result = simulate(trace, FIFOScheduler(), ClusterConfig(4, 4))
        assert result.jobs[2].start_time >= result.jobs[0].completion_time
        assert all(j.completion_time is not None for j in result.jobs)


class TestProfileStability:
    def test_phase_invariants_stable_across_executions(self):
        """Paper Section II: avg/max per-phase metrics are 'very stable
        (within 10-15%) across different job executions'."""
        from repro.workloads import app_spec

        rng = np.random.default_rng(3)
        for app in ("WordCount", "Sort", "Bayes"):
            spec = app_spec(app)
            runs = [spec.make_profile(rng) for _ in range(5)]
            for stat in ("map_stats", "typical_shuffle_stats", "reduce_stats"):
                avgs = [getattr(p, stat).avg for p in runs]
                spread = (max(avgs) - min(avgs)) / np.mean(avgs)
                assert spread < 0.15, f"{app}.{stat}: spread {spread:.2%}"
