"""Tests for `simmr evolve` and the ``policy`` scheduler-spec kind.

The acceptance pins live here:

* a fixed-seed tiny search reproduces the exact winning tree, its
  canonical JSON, its policy digest AND its replay event digest — and
  that winner strictly beats both hand-written baselines (FIFO and
  MaxEDF) on the deadline-utility fitness;
* results are identical across worker counts (the executor fan-out is
  not allowed to perturb the search);
* a compiled policy sweeps through ``simulate_many`` with warm cache
  hits, keyed by the canonical tree text rather than input formatting.
"""

from __future__ import annotations

import json

import pytest

from repro.core import ClusterConfig, TraceJob
from repro.parallel import ResultCache, SimTask, simulate_many
from repro.policy import (
    EvolveConfig,
    canonical_policy_json,
    evolve,
    example_policy,
    parse_policy,
    policy_spec,
)

from conftest import make_random_profile

#: The tiny pinned search: small enough for CI (~0.2 s), large enough
#: that the seeded primitives get mutated competition.
PINNED_CONFIG = EvolveConfig(
    seed=7,
    population=8,
    generations=2,
    jobs=10,
    traces=1,
    mean_interarrival=20.0,
    deadline_factor=1.3,
    map_slots=16,
    reduce_slots=16,
)

PINNED_WINNER_JSON = (
    '{"name":"edf-sjf","tree":{"bias":0.0,"score":['
    '{"feature":"deadline","weight":1.0},'
    '{"feature":"total_work","weight":1.0}]},"version":1}'
)
PINNED_WINNER_DIGEST = "9dc0fc4e859bb4ade7c619673843c600"
PINNED_EVENT_DIGESTS = ("bd852d1077eef4b4987fe5ecb0429e41",)


class TestEvolvePinned:
    def test_pinned_winner_and_event_digest(self):
        result = evolve(PINNED_CONFIG)
        assert result.winner_json == PINNED_WINNER_JSON
        assert result.winner_digest == PINNED_WINNER_DIGEST
        assert result.winner_event_digests == PINNED_EVENT_DIGESTS

    def test_winner_beats_fifo_and_edf_baselines(self):
        result = evolve(PINNED_CONFIG)
        assert set(result.baselines) == {"fifo", "maxedf"}
        for name, entry in result.baselines.items():
            assert result.winner_fitness < tuple(entry["fitness"]), name
        assert result.beats_baselines

    def test_identical_across_worker_counts(self):
        serial = evolve(PINNED_CONFIG)
        from dataclasses import replace

        parallel = evolve(replace(PINNED_CONFIG, workers=2))
        assert parallel.winner_json == serial.winner_json
        assert parallel.winner_event_digests == serial.winner_event_digests
        assert parallel.winner_fitness == serial.winner_fitness
        assert parallel.history == serial.history

    def test_result_serializes(self):
        result = evolve(PINNED_CONFIG)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["winner_digest"] == PINNED_WINNER_DIGEST
        assert payload["beats_baselines"] is True
        assert payload["history"], "per-generation history must be recorded"
        assert payload["evaluations"] >= PINNED_CONFIG.population

    def test_progress_callback_sees_every_generation(self):
        rows = []
        evolve(PINNED_CONFIG, progress=lambda gen, row: rows.append((gen, row)))
        assert [gen for gen, _ in rows] == list(range(PINNED_CONFIG.generations))
        assert all(row["best"] for _, row in rows)


# --------------------------------------------------------------------------- #
# the 'policy' SchedulerSpec kind through simulate_many
# --------------------------------------------------------------------------- #

@pytest.fixture
def trace(rng):
    profile = make_random_profile(rng, num_maps=24, num_reduces=8)
    return [
        TraceJob(profile, 0.0, deadline=500.0),
        TraceJob(profile, 15.0),
        TraceJob(profile, 40.0, deadline=1200.0),
    ]


class TestPolicySpec:
    def tasks(self, spec):
        return [
            SimTask(
                trace_id="t",
                scheduler=spec,
                cluster=ClusterConfig(16, 16),
            )
        ]

    def test_sweep_and_warm_cache_hits(self, trace):
        spec = policy_spec(example_policy("deadline-aware"))
        with ResultCache(":memory:") as cache:
            cold = simulate_many({"t": trace}, self.tasks(spec), cache=cache)
            assert cache.stats.misses == 1 and cache.stats.hits == 0
            warm = simulate_many({"t": trace}, self.tasks(spec), cache=cache)
            assert cache.stats.hits == 1
        assert warm[0].result.event_digest == cold[0].result.event_digest
        assert warm[0].cached and not cold[0].cached

    def test_cache_key_is_content_stable(self, trace):
        # Formatting of the submitted tree must not affect the identity.
        doc = example_policy("deadline-aware")
        pretty = json.dumps(doc, indent=4)
        assert policy_spec(pretty).identity() == policy_spec(doc).identity()

    def test_different_trees_are_cache_distinct(self):
        fifo = policy_spec(example_policy("fifo-tree"))
        edf = policy_spec(example_policy("edf-tree"))
        assert fifo.identity() != edf.identity()

    def test_spec_matches_direct_simulation(self, trace):
        from repro.core.engine import simulate
        from repro.policy import compile_policy
        from repro.sanitize.digest import DigestRecorder

        spec = policy_spec(example_policy("edf-tree"))
        outcome = simulate_many({"t": trace}, self.tasks(spec), workers=2)
        recorder = DigestRecorder()
        simulate(
            trace,
            compile_policy(example_policy("edf-tree")),
            ClusterConfig(16, 16),
            sanitizer=recorder,
        )
        assert outcome[0].result.event_digest == recorder.hexdigest()

    def test_worker_rebuild_revalidates(self, trace):
        from repro.parallel.executor import SchedulerSpec

        bad = SchedulerSpec(
            kind="policy",
            name="bogus",
            kwargs=(("tree", '{"version":1,"name":"bogus","tree":{"pick":"lifo"}}'),),
        )
        with pytest.raises(Exception):
            simulate_many({"t": trace}, self.tasks(bad))

    def test_evolved_winner_round_trips_as_spec(self, trace):
        result = evolve(PINNED_CONFIG)
        spec = policy_spec(parse_policy(result.winner_json))
        assert spec.kind == "policy"
        assert canonical_policy_json(parse_policy(result.winner_json)) == result.winner_json
        outcome = simulate_many({"t": trace}, self.tasks(spec))
        assert outcome[0].result.event_digest
