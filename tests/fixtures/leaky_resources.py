"""Deliberately leaky resource handling: the RES-family fixture.

Every ``# expect: RULE`` marker pins the exact rule id and line the
analyzer must report; the clean variants next to each violation pin
the sanctioned forms (ownership transfer before fallible writes,
try/finally release) that must stay silent.  See
``tests/test_simlint.py::TestResFixture``.
"""

import os
import shutil
import sqlite3
import tempfile
from multiprocessing import shared_memory


def publish_segment(payload):
    seg = shared_memory.SharedMemory(create=True, size=len(payload))  # expect: RES001
    seg.buf[: len(payload)] = payload
    return seg.name


def publish_segment_registered(payload, owners):
    seg = shared_memory.SharedMemory(create=True, size=len(payload))
    owners.append(seg)  # ownership transferred before the fallible write
    seg.buf[: len(payload)] = payload
    return seg.name


def query_once(path):
    conn = sqlite3.connect(path)  # expect: RES002
    cur = conn.execute("SELECT 1")  # expect: RES002
    return cur.fetchone()


def query_closed(path):
    conn = sqlite3.connect(path)
    try:
        cur = conn.execute("SELECT 1")
        row = cur.fetchone()
        cur.close()
        return row
    finally:
        conn.close()


def spill(payload):
    fd, path = tempfile.mkstemp()  # expect: RES003
    with os.fdopen(fd, "wb") as fh:
        fh.write(payload)
    return path


def spill_owned(payload, files):
    fd, path = tempfile.mkstemp()
    files.append(path)  # the cleanup list owns the path from here on
    with os.fdopen(fd, "wb") as fh:
        fh.write(payload)
    return path


def scratch_dir(build):
    root = tempfile.mkdtemp()  # expect: RES003
    if not build:
        return None  # leaves the directory behind
    shutil.rmtree(root)
    return None


def keep_report(data):
    tmp = tempfile.NamedTemporaryFile(delete=False)  # simlint: disable=RES003 -- handed to the caller by name
    tmp.write(data)
    tmp.close()
    return tmp.name
