"""Deliberately racy service code: the CONC-family fixture.

Every ``# expect: RULE`` marker pins the exact rule id and line the
analyzer must report; the clean variants next to each violation pin
the sanctioned forms that must stay silent.  See
``tests/test_simlint.py::TestConcFixture``.
"""

import sqlite3
import threading
from http.server import BaseHTTPRequestHandler


class Tally:
    """Worker-thread shared state with inconsistent lock discipline."""

    def __init__(self):
        self._lock = threading.Lock()
        self.values = []

    def start(self):
        # Two concurrent activations of _drain share self.values.
        return [threading.Thread(target=self._drain) for _ in range(2)]

    def _drain(self):
        with self._lock:
            self.values.append(0)
        self.values.pop()  # expect: CONC001


class StatsHandler(BaseHTTPRequestHandler):
    """HTTP handler methods are thread entry points on their own."""

    def do_GET(self):
        with self._lock:
            self.hits += 1

    def do_POST(self):
        self.hits += 1  # expect: CONC001

    def do_PUT(self):
        self.hits += 1  # simlint: disable=CONC001 -- single-writer by design


class Transfer:
    """Opposite nesting orders: the classic two-lock deadlock."""

    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()

    def alpha_then_beta(self):
        with self._alpha_lock:
            with self._beta_lock:  # expect: CONC002
                return True

    def beta_then_alpha(self):
        with self._beta_lock:
            with self._alpha_lock:  # expect: CONC002
                return True


class Pipeline:
    """One global order, consistently applied: no deadlock, no finding."""

    def __init__(self):
        self._outer_lock = threading.Lock()
        self._inner_lock = threading.Lock()

    def forward(self):
        with self._outer_lock:
            with self._inner_lock:
                return True

    def forward_again(self):
        with self._outer_lock:
            with self._inner_lock:
                return False


class LedgerStore:
    """Cross-thread sqlite: every use must hold the guarding lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(":memory:", check_same_thread=False)

    def read(self):
        with self._lock:
            return self._conn.execute("SELECT 1").fetchone()

    def record(self, key):
        self._conn.execute("INSERT INTO ledger VALUES (?)", (key,))  # expect: CONC003


class BareStore:
    """Declared cross-thread but owns no lock at all."""

    def __init__(self):
        self._conn = sqlite3.connect(":memory:", check_same_thread=False)  # expect: CONC003


def manual_toggle(state_lock, flag):
    state_lock.acquire()  # expect: CONC004
    flag.set()
    state_lock.release()


def manual_toggle_guarded(state_lock, flag):
    state_lock.acquire()
    try:
        flag.set()
    finally:
        state_lock.release()
