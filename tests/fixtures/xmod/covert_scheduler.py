"""A scheduler whose violations all live one module away.

Companion to ``helpers.py``; ``tests/test_simlint.py`` lints the two
files *together* and asserts the ``# expect:`` markers below, then lints
this file *alone* and asserts no cross-module findings — without the
helper module in the graph there is nothing to resolve against.

Both import styles the call graph resolves are exercised: ``from
.helpers import name`` and module aliasing via ``from . import helpers
as h``.
"""

from repro.schedulers.base import Scheduler

from . import helpers as h
from .helpers import entropy_seed, strict_first


class XModScheduler(Scheduler):
    """Line-by-line clean; see helpers.py for the actual sinks."""

    name = "XMod"

    def choose_next_map_task(self, job_queue):
        jitter = entropy_seed() % 97  # expect: DET004
        job = strict_first(job_queue)  # expect: API002
        if jitter >= 0:
            h.bump_dispatch(job)  # expect: SIM004
        return job

    def choose_next_reduce_task(self, job_queue):
        """Deterministic pick; raises ``KeyError`` (via ``strict_first``)
        when no job is eligible — declared, so API002 stays quiet."""
        return strict_first(job_queue)
