"""Cross-module helpers for the ``xmod`` fixture scheduler.

Every function here is clean under the per-file rules — the wall-clock
read sits outside simulation scope, the raise has no rule of its own,
and the mutation is not inside a ``choose_next_*`` body.  Only the
whole-program call graph (DET004 / SIM004 / API002) connects these
sinks to the scheduler in ``covert_scheduler.py``.
"""

import time


def entropy_seed():
    """A 'seed' that is really the host clock."""
    return time.time_ns()


def _pick_first(job_queue):
    if not job_queue:
        raise KeyError("no eligible jobs")
    return job_queue[0]


def strict_first(job_queue):
    """Depth-2 chain: the raise lives one more hop down."""
    return _pick_first(job_queue)


def bump_dispatch(job):
    job.reduces_dispatched += 1
