"""A deliberately-broken scheduler: one violation per simlint rule id.

This file is a *lint target*, not test code (``tests/fixtures/`` is
exempt from simlint's test-path waivers for exactly this reason) — it is
never imported by the suite.  Every violating line carries a trailing
``# expect: <RULE>`` marker; ``tests/test_simlint.py`` asserts that the
analyzer reports precisely those (rule id, line) pairs and nothing else.

Keep the violations and markers in sync when editing.
"""

import random
import time

import numpy as np

from repro.schedulers.base import Scheduler

UNSEEDED_RNG = np.random.default_rng()  # expect: DET002
GLOBAL_DRAW = random.random()  # expect: DET002
LEGACY_DRAW = np.random.rand(4)  # expect: DET002


class BrokenScheduler(Scheduler):
    """Violates the narrow choose_next_* contract every way simlint sees."""

    name = "Broken"

    def __init__(self) -> None:
        self.weights = {"a": 1.0, "b": 2.0}

    def choose_next_map_task(self, job_queue):
        started = time.monotonic()  # expect: DET001
        for pool in set(self.weights):  # expect: DET003
            if pool not in self.weights:
                return None
        heaviest = max(self.weights.values())  # expect: DET003
        job = min(job_queue, key=lambda j: (j.submit_time, j.job_id))
        if job.submit_time == started:  # expect: SIM001
            return None
        job.maps_dispatched += 1  # expect: SIM002
        job.wanted_map_slots = int(heaviest)  # expect: SIM002
        job.requeued_maps.append(0)  # expect: SIM002
        return job

    def choose_next_reduce_task(self, job_queue):
        latest = 0.0
        for weight in self.weights.values():  # expect: DET003
            latest = max(latest, weight)
        if latest != 0.0:
            pass
        return min(job_queue, key=lambda j: j.job_id, default=None)


class BrokenStaticScheduler(Scheduler):
    """Declares the fast path *and* hand-writes the dynamic path."""

    name = "BrokenStatic"
    static_priority = True

    def priority_key(self, job):
        return (job.submit_time, job.job_id)

    def choose_next_map_task(self, job_queue):  # expect: SIM003
        return min(job_queue, key=self.priority_key, default=None)

    def choose_next_reduce_task(self, job_queue):  # expect: SIM003
        # Disagrees with priority_key: exactly the drift SIM003 exists for.
        return max(job_queue, key=self.priority_key, default=None)


class BrokenEngineFragment:
    """An engine-ish event handler that rewinds the simulation clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list = []

    def _push_event(self, when, etype, job_id, index):
        self._heap.append((when, etype, job_id, index))

    def _on_map_departure(self, job, index, seq):
        self._push_event(self._now - 1.0, 2, 0, index)  # expect: API001


# --------------------------------------------------------------------- #
# Indirection: violations hidden behind helper functions.  The helpers
# are (mostly) clean line-by-line; only the whole-program call graph
# (DET004 / SIM004 / API002) connects them to the scheduler contract.
# --------------------------------------------------------------------- #


def _hidden_clock():
    """Innocent-looking helper that actually reads the host clock."""
    return time.perf_counter()


def _hidden_jitter():
    return random.random()  # expect: DET002


def _sneaky_bump(job):
    """'Helpfully' updates engine bookkeeping for the chosen job."""
    job.maps_dispatched += 1


def _fragile_pick(job_queue):
    if not job_queue:
        raise ValueError("no jobs to pick from")
    return job_queue[0]


class CovertScheduler(Scheduler):
    """Each method body passes the per-file rules; the helpers do the dirt."""

    name = "Covert"

    def choose_next_map_task(self, job_queue):
        started = _hidden_clock()  # expect: DET004
        job = _fragile_pick(job_queue)  # expect: API002
        if started >= 0.0:
            _sneaky_bump(job)  # expect: SIM004
        return job

    def choose_next_reduce_task(self, job_queue):
        if _hidden_jitter() < 0.5:  # expect: DET004
            return None
        return min(job_queue, key=lambda j: j.job_id, default=None)
