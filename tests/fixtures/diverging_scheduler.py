"""A scheduler with hidden process-global state, for divergence tests.

``tests/test_simsan.py`` loads this file (via importlib, it is not a
package module) to demonstrate ``DIV001``: replaying one trace twice
must produce identical event streams, and this policy guarantees it
does not.  Each constructed instance flips its sort direction based on
a *module-level* counter, so the second engine of a
:func:`repro.sanitize.digest.dual_run` — built by a perfectly fresh
factory — still behaves differently from the first.  The stdlib global
RNG fails the same way (its hidden stream also survives across runs in
one process); the counter version is used here because it diverges
deterministically, keeping the test exact.

Static analysis cannot prove this class nondeterministic (no clock, no
RNG, no mutation — just an innocent ``itertools.count``), which is
precisely why the runtime dual-run check exists.
"""

import itertools

from repro.schedulers.base import Scheduler

_instances = itertools.count()


class DivergingScheduler(Scheduler):
    """Picks shortest-queue-first or longest-first, per construction order."""

    name = "Diverging"

    def __init__(self) -> None:
        self._flip = next(_instances) % 2 == 1

    def _key(self, job):
        return (job.submit_time, job.job_id)

    def choose_next_map_task(self, job_queue):
        pick = max if self._flip else min
        return pick(job_queue, key=self._key, default=None)

    def choose_next_reduce_task(self, job_queue):
        pick = max if self._flip else min
        return pick(job_queue, key=self._key, default=None)
